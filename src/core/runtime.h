#ifndef JOCL_CORE_RUNTIME_H_
#define JOCL_CORE_RUNTIME_H_

#include <cstddef>
#include <vector>

#include "core/decode.h"
#include "core/jocl.h"
#include "core/shard.h"
#include "core/signal_cache.h"

namespace jocl {

/// \brief Execution knobs of the sharded runtime (orthogonal to the model
/// configuration in JoclOptions; no setting changes the result).
struct RuntimeOptions {
  /// Worker threads running shards: 1 = sequential, 0 = one per hardware
  /// thread, n = n workers.
  size_t num_threads = 0;
  /// Shard count: 0 = one shard per independent sub-problem, 1 = the
  /// monolithic single-graph run, n = components packed into n shards.
  size_t max_shards = 0;
};

/// \brief Stage timings + shape facts of one runtime execution (consumed
/// by bench_scaling and the CLI).
struct RuntimeStats {
  double problem_seconds = 0.0;    ///< BuildProblem (global)
  double cache_seconds = 0.0;      ///< SignalCache build (global)
  double partition_seconds = 0.0;  ///< union-find sharding
  double shard_seconds = 0.0;      ///< build→compile→infer→extract, wall
  /// Graph building + compilation summed across shards. Accumulated over
  /// all workers, so with several threads this exceeds the wall-clock
  /// share of shard_seconds it represents.
  double graph_seconds = 0.0;
  /// Engine Run + belief extraction summed across shards (same
  /// accumulated-over-workers caveat).
  double infer_seconds = 0.0;
  double decode_seconds = 0.0;     ///< global decode + conflict resolution
  size_t shards = 0;
  size_t components = 0;
  size_t variables = 0;  ///< across all shard graphs
  size_t factors = 0;
  // ---- LBP kernel counters, summed across shards -----------------------
  size_t message_updates = 0;  ///< factor message updates executed
  size_t residual_pops = 0;    ///< residual-queue pops (kResidual only)
  size_t sweeps_skipped = 0;   ///< sweeps' worth of updates not spent
};

/// \brief One shard's inference outputs in *local* indexing — the unit of
/// work `JoclRuntime` scatters into the global result and the unit of
/// caching `JoclSession` reuses across ingestion batches.
struct ShardBeliefs {
  /// Pair marginals/states aligned with the local problem's pair vectors
  /// (empty when canonicalization is ablated).
  std::vector<std::vector<double>> x_marg, y_marg, z_marg;
  std::vector<size_t> x_state, y_state, z_state;
  /// Linking marginals/states aligned with the local problem's triples
  /// (empty when linking is ablated).
  std::vector<std::vector<double>> es_marg, rp_marg, eo_marg;
  std::vector<size_t> es_state, rp_state, eo_state;
  /// Convergence record (marginals cleared; the vectors above carry them).
  LbpResult diagnostics;
  size_t variables = 0;
  size_t factors = 0;
};

/// \brief Warm-start hints for one shard run, in local indexing: prior
/// marginals aligned with the local problem's pairs / triples. Empty
/// inner vectors mean "no hint for this variable". Only consulted when
/// non-null; see InferenceEngine::WarmStart for the approximate-restart
/// semantics.
struct ShardWarmStart {
  std::vector<std::vector<double>> x_prior, y_prior, z_prior;
  std::vector<std::vector<double>> es_prior, rp_prior, eo_prior;
};

/// \brief Per-shard stage split of RunShardInference.
struct ShardRunTimings {
  double graph_seconds = 0.0;  ///< BuildJoclGraph + engine construction
  double infer_seconds = 0.0;  ///< engine Run + belief extraction
};

/// \brief Builds, compiles and infers one shard-local problem, returning
/// its beliefs in local indexing. Pure function of (local problem, cache
/// answers, options, weights) — which is what makes session-side belief
/// reuse byte-exact. \p engine_threads is the component-parallel
/// thread count inside the engine (bit-identical for every value).
ShardBeliefs RunShardInference(const JoclProblem& local,
                               const SignalCache& cache, const CuratedKb& ckb,
                               const JoclOptions& options,
                               const std::vector<double>& weights,
                               size_t engine_threads,
                               const ShardWarmStart* warm = nullptr,
                               ShardRunTimings* timings = nullptr);

/// \brief Sizes the global belief arrays for \p problem according to the
/// enabled factor families.
void SizeJoclBeliefs(const JoclProblem& problem,
                     const GraphBuilderOptions& builder, JoclBeliefs* beliefs);

/// \brief Scatters one shard's local beliefs into the global arrays via
/// the shard's strictly-increasing local→global maps. Shards partition
/// the pair and triple spaces, so concurrent scatters touch disjoint
/// slots.
void ScatterShardBeliefs(const ProblemShard& shard, const ShardBeliefs& local,
                         const GraphBuilderOptions& builder,
                         JoclBeliefs* beliefs);

/// \brief Folds one shard's convergence diagnostics into \p merged.
/// max/AND/elementwise-max are associative and commutative, so any fold
/// order reproduces the monolithic engine's own aggregation bit for bit.
void MergeShardDiagnostics(const LbpResult& shard, LbpResult* merged);

/// \brief Assembles the final JoclResult from merged global beliefs:
/// canonical marginal order (subject/predicate/object pairs, then
/// es/rp/eo per triple), global decode and §3.5 conflict resolution.
/// \p diagnostics is the already-merged convergence record (its marginals
/// field is overwritten here). \p decode_threads > 1 runs the decode's
/// component-parallel stages on the worker pool — byte-identical output
/// for any setting.
JoclResult AssembleJoclResult(const JoclProblem& problem,
                              const JoclBeliefs& beliefs,
                              const JoclOptions& options,
                              std::vector<double> weights,
                              LbpResult diagnostics,
                              size_t decode_threads = 1);

/// \brief The sharded end-to-end runtime (ROADMAP "production-scale"
/// path): builds the problem and the signal cache once, partitions into
/// independent shards, runs build→compile→infer→decode per shard on a
/// worker pool, and merges per-shard beliefs into globally stable cluster
/// labels and links.
///
/// Shard graphs are exactly the connected components of the monolithic
/// factor graph and the decode/§3.5 steps run globally over merged
/// beliefs, so the result is byte-identical for every (num_threads,
/// max_shards) combination — including the monolithic max_shards = 1.
/// `Jocl::Infer` is a thin wrapper over this class; `JoclSession`
/// (core/session.h) is its long-lived streaming counterpart.
class JoclRuntime {
 public:
  explicit JoclRuntime(JoclOptions options = {}, RuntimeOptions runtime = {});

  /// Joint inference over the given triples with the given weights (empty
  /// = Jocl::DefaultWeights()). \p stats, when non-null, receives stage
  /// timings.
  Result<JoclResult> Infer(const Dataset& dataset,
                           const SignalBundle& signals,
                           const std::vector<size_t>& triple_subset,
                           std::vector<double> weights = {},
                           RuntimeStats* stats = nullptr) const;

  const JoclOptions& options() const { return options_; }
  const RuntimeOptions& runtime_options() const { return runtime_; }

 private:
  JoclOptions options_;
  RuntimeOptions runtime_;
};

}  // namespace jocl

#endif  // JOCL_CORE_RUNTIME_H_
