#ifndef JOCL_CORE_RUNTIME_H_
#define JOCL_CORE_RUNTIME_H_

#include <cstddef>
#include <vector>

#include "core/jocl.h"
#include "core/shard.h"
#include "core/signal_cache.h"

namespace jocl {

/// \brief Execution knobs of the sharded runtime (orthogonal to the model
/// configuration in JoclOptions; no setting changes the result).
struct RuntimeOptions {
  /// Worker threads running shards: 1 = sequential, 0 = one per hardware
  /// thread, n = n workers.
  size_t num_threads = 0;
  /// Shard count: 0 = one shard per independent sub-problem, 1 = the
  /// monolithic single-graph run, n = components packed into n shards.
  size_t max_shards = 0;
};

/// \brief Stage timings + shape facts of one runtime execution (consumed
/// by bench_scaling and the CLI).
struct RuntimeStats {
  double problem_seconds = 0.0;    ///< BuildProblem (global)
  double cache_seconds = 0.0;      ///< SignalCache build (global)
  double partition_seconds = 0.0;  ///< union-find sharding
  double shard_seconds = 0.0;      ///< build→compile→infer→extract, wall
  double decode_seconds = 0.0;     ///< global decode + conflict resolution
  size_t shards = 0;
  size_t components = 0;
  size_t variables = 0;  ///< across all shard graphs
  size_t factors = 0;
};

/// \brief The sharded end-to-end runtime (ROADMAP "production-scale"
/// path): builds the problem and the signal cache once, partitions into
/// independent shards, runs build→compile→infer→decode per shard on a
/// worker pool, and merges per-shard beliefs into globally stable cluster
/// labels and links.
///
/// Shard graphs are exactly the connected components of the monolithic
/// factor graph and the decode/§3.5 steps run globally over merged
/// beliefs, so the result is byte-identical for every (num_threads,
/// max_shards) combination — including the monolithic max_shards = 1.
/// `Jocl::Infer` is a thin wrapper over this class.
class JoclRuntime {
 public:
  explicit JoclRuntime(JoclOptions options = {}, RuntimeOptions runtime = {});

  /// Joint inference over the given triples with the given weights (empty
  /// = Jocl::DefaultWeights()). \p stats, when non-null, receives stage
  /// timings.
  Result<JoclResult> Infer(const Dataset& dataset,
                           const SignalBundle& signals,
                           const std::vector<size_t>& triple_subset,
                           std::vector<double> weights = {},
                           RuntimeStats* stats = nullptr) const;

  const JoclOptions& options() const { return options_; }
  const RuntimeOptions& runtime_options() const { return runtime_; }

 private:
  JoclOptions options_;
  RuntimeOptions runtime_;
};

}  // namespace jocl

#endif  // JOCL_CORE_RUNTIME_H_
