#include "core/problem.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "text/tokenizer.h"
#include "util/logging.h"

namespace jocl {
namespace {

// Deduplicates one role's phrases into surfaces + per-triple indices.
void BuildSurfaces(const std::vector<std::string>& phrases,
                   std::vector<std::string>* surfaces,
                   std::vector<size_t>* of_triple,
                   std::vector<size_t>* representative) {
  std::unordered_map<std::string, size_t> index;
  of_triple->reserve(phrases.size());
  for (size_t t = 0; t < phrases.size(); ++t) {
    auto [it, inserted] = index.emplace(phrases[t], surfaces->size());
    if (inserted) {
      surfaces->push_back(phrases[t]);
      representative->push_back(t);
    }
    of_triple->push_back(it->second);
  }
}

// Token-blocked pair generation with the IDF threshold, plus optional
// side-information blocking buckets (shared top candidate, shared PPDB
// cluster) whose pairs are admitted regardless of IDF similarity.
std::vector<SurfacePair> BlockPairs(
    const std::vector<std::string>& surfaces, const IdfTable& idf,
    const std::vector<std::vector<std::string>>& trusted_buckets,
    const std::vector<std::vector<std::string>>& candidate_buckets,
    const EmbeddingTable* embeddings, const ProblemOptions& options) {
  std::unordered_map<std::string, std::vector<size_t>> buckets;
  for (size_t i = 0; i < surfaces.size(); ++i) {
    const auto& stop = StopWords();
    for (const auto& token : Tokenize(surfaces[i])) {
      if (stop.count(token) > 0) continue;
      buckets[token].push_back(i);
    }
  }
  // `evaluated` avoids recomputing IDF within token blocking; `added`
  // tracks pairs actually admitted — later blocking stages must only skip
  // the latter (a pair can fail the IDF gate yet be admitted by a PPDB or
  // candidate bucket).
  std::unordered_set<uint64_t> evaluated;
  std::unordered_set<uint64_t> added;
  std::vector<SurfacePair> pairs;
  for (const auto& [token, members] : buckets) {
    if (members.size() > options.max_block_size) continue;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        size_t a = std::min(members[i], members[j]);
        size_t b = std::max(members[i], members[j]);
        if (a == b) continue;
        uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
        if (!evaluated.insert(key).second) continue;
        double sim = idf.Similarity(surfaces[a], surfaces[b]);
        if (sim >= options.pair_threshold) {
          added.insert(key);
          pairs.push_back(SurfacePair{a, b, sim});
        }
      }
    }
  }
  // Embedding-neighbor blocking: brute-force cosine over phrase vectors.
  if (options.side_info_blocking && options.emb_blocking_threshold > 0.0 &&
      embeddings != nullptr && embeddings->dim() > 0) {
    std::vector<std::vector<float>> vectors(surfaces.size());
    std::vector<bool> valid(surfaces.size(), false);
    for (size_t i = 0; i < surfaces.size(); ++i) {
      vectors[i] = embeddings->PhraseVector(surfaces[i]);
      for (float x : vectors[i]) {
        if (x != 0.0f) {
          valid[i] = true;
          break;
        }
      }
    }
    size_t emitted = 0;
    for (size_t i = 0; i < surfaces.size() && emitted < options.max_emb_pairs;
         ++i) {
      if (!valid[i]) continue;
      for (size_t j = i + 1; j < surfaces.size(); ++j) {
        if (!valid[j]) continue;
        uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
        if (added.count(key) > 0) continue;
        if (EmbeddingTable::Cosine(vectors[i], vectors[j]) >=
            options.emb_blocking_threshold) {
          added.insert(key);
          pairs.push_back(
              SurfacePair{i, j, idf.Similarity(surfaces[i], surfaces[j])});
          if (++emitted >= options.max_emb_pairs) break;
        }
      }
    }
  }

  // Side-information buckets: admit every in-bucket pair (capped).
  std::unordered_map<std::string, size_t> surface_index;
  for (size_t i = 0; i < surfaces.size(); ++i) {
    surface_index.emplace(surfaces[i], i);
  }
  auto admit_buckets = [&](const std::vector<std::vector<std::string>>&
                               bucket_list,
                           bool from_candidates) {
    for (const auto& bucket : bucket_list) {
      if (bucket.size() < 2 || bucket.size() > options.max_block_size) {
        continue;
      }
      std::vector<size_t> members;
      for (const auto& phrase : bucket) {
        auto it = surface_index.find(phrase);
        if (it != surface_index.end()) members.push_back(it->second);
      }
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          size_t a = std::min(members[i], members[j]);
          size_t b = std::max(members[i], members[j]);
          if (a == b) continue;
          uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
          if (!added.insert(key).second) continue;
          pairs.push_back(SurfacePair{
              a, b, idf.Similarity(surfaces[a], surfaces[b]),
              from_candidates});
        }
      }
    }
  };
  // Trusted (PPDB) buckets first so overlapping pairs keep the
  // independent-evidence tag.
  admit_buckets(trusted_buckets, /*from_candidates=*/false);
  admit_buckets(candidate_buckets, /*from_candidates=*/true);
  // Deterministic order; cap by similarity when oversized.
  std::sort(pairs.begin(), pairs.end(),
            [](const SurfacePair& x, const SurfacePair& y) {
              if (x.idf != y.idf) return x.idf > y.idf;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (pairs.size() > options.max_pairs_per_role) {
    pairs.resize(options.max_pairs_per_role);
  }
  // Re-sort by (a, b) so downstream iteration is index-ordered.
  std::sort(pairs.begin(), pairs.end(),
            [](const SurfacePair& x, const SurfacePair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return pairs;
}

}  // namespace

JoclProblem BuildProblem(const Dataset& dataset, const SignalBundle& signals,
                         const std::vector<size_t>& triple_subset,
                         const ProblemOptions& options, ProblemCache* cache) {
  JoclProblem problem;
  problem.triples = triple_subset;
  std::sort(problem.triples.begin(), problem.triples.end());
  problem.triples.erase(
      std::unique(problem.triples.begin(), problem.triples.end()),
      problem.triples.end());

  std::vector<std::string> subjects;
  std::vector<std::string> predicates;
  std::vector<std::string> objects;
  subjects.reserve(problem.triples.size());
  for (size_t t : problem.triples) {
    const OieTriple& triple = dataset.okb.triple(t);
    subjects.push_back(triple.subject);
    predicates.push_back(triple.predicate);
    objects.push_back(triple.object);
  }
  BuildSurfaces(subjects, &problem.subject_surfaces, &problem.subject_of,
                &problem.subject_rep);
  BuildSurfaces(predicates, &problem.predicate_surfaces,
                &problem.predicate_of, &problem.predicate_rep);
  BuildSurfaces(objects, &problem.object_surfaces, &problem.object_of,
                &problem.object_rep);

  // Candidate generation is a pure function of (surface, max_candidates)
  // against the fixed CKB, so the optional cross-build memo returns the
  // exact vectors an unmemoized build would compute.
  const CuratedKb& ckb = dataset.ckb;
  auto entity_candidates = [&](const std::string& surface) {
    if (cache == nullptr) {
      return ckb.EntityCandidates(surface, options.max_candidates);
    }
    auto it = cache->entity_candidates.find(surface);
    if (it == cache->entity_candidates.end()) {
      ++cache->misses;
      it = cache->entity_candidates
               .emplace(surface,
                        ckb.EntityCandidates(surface, options.max_candidates))
               .first;
    } else {
      ++cache->hits;
    }
    return it->second;
  };
  auto relation_candidates = [&](const std::string& surface) {
    if (cache == nullptr) {
      return ckb.RelationCandidates(surface, options.max_candidates);
    }
    auto it = cache->relation_candidates.find(surface);
    if (it == cache->relation_candidates.end()) {
      ++cache->misses;
      it = cache->relation_candidates
               .emplace(surface, ckb.RelationCandidates(
                                     surface, options.max_candidates))
               .first;
    } else {
      ++cache->hits;
    }
    return it->second;
  };
  problem.subject_candidates.reserve(problem.subject_surfaces.size());
  for (const auto& surface : problem.subject_surfaces) {
    problem.subject_candidates.push_back(entity_candidates(surface));
  }
  problem.object_candidates.reserve(problem.object_surfaces.size());
  for (const auto& surface : problem.object_surfaces) {
    problem.object_candidates.push_back(entity_candidates(surface));
  }
  problem.predicate_candidates.reserve(problem.predicate_surfaces.size());
  for (const auto& surface : problem.predicate_surfaces) {
    problem.predicate_candidates.push_back(relation_candidates(surface));
  }

  // Side-information blocking buckets. PPDB buckets carry independent
  // paraphrase evidence; candidate buckets are tagged so downstream
  // consumers can exclude them from consistency factors.
  std::vector<std::vector<std::string>> subject_ppdb_buckets;
  std::vector<std::vector<std::string>> predicate_ppdb_buckets;
  std::vector<std::vector<std::string>> object_ppdb_buckets;
  std::vector<std::vector<std::string>> subject_cand_buckets;
  std::vector<std::vector<std::string>> object_cand_buckets;
  std::vector<std::vector<std::string>> predicate_cand_buckets;
  if (options.side_info_blocking) {
    // (a) shared top candidate entity / relation;
    auto candidate_buckets =
        [&](const std::vector<std::string>& surfaces, const auto& candidates,
            std::vector<std::vector<std::string>>* out) {
          std::unordered_map<int64_t, std::vector<std::string>> by_id;
          for (size_t s = 0; s < surfaces.size(); ++s) {
            size_t top = std::min(options.blocking_candidates,
                                  candidates[s].size());
            for (size_t c = 0; c < top; ++c) {
              by_id[candidates[s][c].id].push_back(surfaces[s]);
            }
          }
          for (auto& [id, bucket] : by_id) {
            if (bucket.size() >= 2) out->push_back(std::move(bucket));
          }
        };
    candidate_buckets(problem.subject_surfaces, problem.subject_candidates,
                      &subject_cand_buckets);
    candidate_buckets(problem.object_surfaces, problem.object_candidates,
                      &object_cand_buckets);
    // No candidate-overlap blocking for predicates: with few CKB relations
    // the top candidates collide constantly, flooding the graph with
    // unrelated RP pairs whose own features then confirm the block
    // (selection bias). PPDB buckets below cover the synonym-verb case.
    // (b) shared PPDB cluster representative.
    if (signals.ppdb != nullptr) {
      auto ppdb_buckets = [&](const std::vector<std::string>& surfaces,
                              std::vector<std::vector<std::string>>* out) {
        std::unordered_map<std::string, std::vector<std::string>> by_rep;
        for (const auto& surface : surfaces) {
          auto rep = signals.ppdb->Representative(surface);
          if (rep.has_value()) by_rep[*rep].push_back(surface);
        }
        for (auto& [rep, bucket] : by_rep) {
          if (bucket.size() >= 2) out->push_back(std::move(bucket));
        }
      };
      ppdb_buckets(problem.subject_surfaces, &subject_ppdb_buckets);
      ppdb_buckets(problem.predicate_surfaces, &predicate_ppdb_buckets);
      ppdb_buckets(problem.object_surfaces, &object_ppdb_buckets);
    }
  }

  problem.subject_pairs = BlockPairs(
      problem.subject_surfaces, signals.np_idf, subject_ppdb_buckets,
      subject_cand_buckets, &signals.embeddings, options);
  problem.predicate_pairs = BlockPairs(
      problem.predicate_surfaces, signals.rp_idf, predicate_ppdb_buckets,
      predicate_cand_buckets, &signals.embeddings, options);
  problem.object_pairs = BlockPairs(
      problem.object_surfaces, signals.np_idf, object_ppdb_buckets,
      object_cand_buckets, &signals.embeddings, options);

  JOCL_LOG(kDebug) << "problem: " << problem.triples.size() << " triples, "
                   << problem.subject_surfaces.size() << "/"
                   << problem.predicate_surfaces.size() << "/"
                   << problem.object_surfaces.size() << " surfaces, "
                   << problem.subject_pairs.size() << "/"
                   << problem.predicate_pairs.size() << "/"
                   << problem.object_pairs.size() << " pairs";
  return problem;
}

}  // namespace jocl
