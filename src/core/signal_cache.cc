#include "core/signal_cache.h"

#include <cmath>

#include "util/logging.h"

namespace jocl {

size_t SignalCache::Add(std::string_view phrase) {
  auto it = index_.find(phrase);
  if (it != index_.end()) return it->second;
  phrases_.emplace_back(phrase);
  size_t id = phrases_.size() - 1;
  index_.emplace(std::string_view(phrases_.back()), id);
  return id;
}

void SignalCache::BuildArena(const EmbeddingTable& table, size_t from,
                             std::vector<float>* unit,
                             std::vector<uint8_t>* has, size_t* dim) const {
  *dim = table.dim();
  unit->resize(phrases_.size() * *dim, 0.0f);
  has->resize(phrases_.size(), 0);
  for (size_t i = from; i < phrases_.size(); ++i) {
    std::vector<float> v = table.PhraseVector(phrases_[i]);
    double norm = 0.0;
    for (float x : v) norm += static_cast<double>(x) * x;
    if (norm <= 0.0) continue;  // no known token: neutral fallback
    norm = std::sqrt(norm);
    float* row = unit->data() + i * *dim;
    for (size_t d = 0; d < *dim; ++d) {
      row[d] = static_cast<float>(v[d] / norm);
    }
    (*has)[i] = 1;
  }
}

void SignalCache::Finalize(const SignalBundle& signals,
                           const SignalCacheFamilies& families) {
  // Toggling a memo family invalidates the append-only invariant (old
  // rows would be missing the newly enabled memo); rebuild from scratch.
  if (finalized_ > 0 &&
      (families.embeddings != families_.embeddings ||
       families.triple_embeddings != families_.triple_embeddings ||
       families.ppdb != families_.ppdb || families.amie != families_.amie ||
       families.kbp != families_.kbp)) {
    finalized_ = 0;
    unit_.clear();
    has_vec_.clear();
    triple_unit_.clear();
    has_triple_vec_.clear();
    ppdb_rep_.clear();
    ppdb_rep_ids_.clear();
    amie_norm_id_.clear();
    amie_evidence_.clear();
    amie_equivalent_.clear();
    amie_norm_ids_.clear();
    kbp_class_.clear();
  }
  bundle_ = &signals;
  families_ = families;
  const size_t n = phrases_.size();
  const size_t from = finalized_;

  if (families.embeddings) {
    BuildArena(signals.embeddings, from, &unit_, &has_vec_, &dim_);
  }
  if (families.triple_embeddings) {
    BuildArena(signals.triple_embeddings, from, &triple_unit_,
               &has_triple_vec_, &triple_dim_);
  }

  // PPDB representatives, interned (the persistent map keeps ids stable
  // across appends; only equality of ids is ever observed).
  if (families.ppdb) {
    ppdb_rep_.resize(n, -1);
    if (signals.ppdb != nullptr) {
      for (size_t i = from; i < n; ++i) {
        auto rep = signals.ppdb->Representative(phrases_[i]);
        if (!rep.has_value()) continue;
        auto [it, inserted] =
            ppdb_rep_ids_.emplace(std::move(*rep),
                                  static_cast<int32_t>(ppdb_rep_ids_.size()));
        ppdb_rep_[i] = it->second;
      }
    }
  }

  // AMIE: interned normalized forms, evidence flags, and the miner's
  // bidirectional equivalences mapped onto norm-id pairs so the pair
  // query never touches a string again.
  if (families.amie) {
    amie_norm_id_.resize(n, -1);
    amie_evidence_.resize(n, 0);
    const size_t norm_ids_before = amie_norm_ids_.size();
    for (size_t i = from; i < n; ++i) {
      std::string norm = signals.amie.NormalizedForm(phrases_[i]);
      bool evidence = signals.amie.HasEvidenceNormalized(norm);
      auto [it, inserted] =
          amie_norm_ids_.emplace(std::move(norm),
                                 static_cast<int32_t>(amie_norm_ids_.size()));
      amie_norm_id_[i] = it->second;
      amie_evidence_[i] = evidence ? 1 : 0;
    }
    // rules() holds every accepted unidirectional rule; a bidirectional
    // presence is exactly the miner's equivalence relation. New norm ids
    // can complete rules whose other side was already interned, so the
    // (static) rule set is re-scanned whenever the id space grew.
    if (amie_norm_ids_.size() > norm_ids_before || from == 0) {
      amie_equivalent_.clear();
      std::unordered_set<uint64_t> directed;
      for (const AmieRule& rule : signals.amie.rules()) {
        auto a = amie_norm_ids_.find(rule.antecedent);
        auto b = amie_norm_ids_.find(rule.consequent);
        if (a == amie_norm_ids_.end() || b == amie_norm_ids_.end()) continue;
        uint64_t forward = (static_cast<uint64_t>(
                                static_cast<uint32_t>(a->second))
                            << 32) |
                           static_cast<uint32_t>(b->second);
        uint64_t backward = (static_cast<uint64_t>(
                                 static_cast<uint32_t>(b->second))
                             << 32) |
                            static_cast<uint32_t>(a->second);
        directed.insert(forward);
        if (directed.count(backward) > 0) {
          amie_equivalent_.insert(PairKey(a->second, b->second));
        }
      }
    }
  }

  // KBP classifications.
  if (families.kbp) {
    kbp_class_.resize(n, kNilId);
    for (size_t i = from; i < n; ++i) {
      kbp_class_[i] = signals.kbp.Classify(phrases_[i]);
    }
  }

  finalized_ = n;
  JOCL_LOG(kDebug) << "signal cache: " << n << " phrases (" << (n - from)
                   << " new), emb dim " << dim_
                   << (families.triple_embeddings ? " (+triple arena)" : "");
}

double SignalCache::Amie(size_t a, size_t b) const {
  if (!families_.amie) return bundle_->Amie(phrases_[a], phrases_[b]);
  // Mirrors SignalBundle::Amie: rule-or-same-norm-form wins, then the
  // absence-is-neutral gate on mining evidence.
  if (amie_norm_id_[a] == amie_norm_id_[b]) return 1.0;
  if (amie_equivalent_.count(PairKey(amie_norm_id_[a], amie_norm_id_[b])) >
      0) {
    return 1.0;
  }
  if (!amie_evidence_[a] || !amie_evidence_[b]) return 0.5;
  return 0.0;
}

double SignalCache::Emb(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Emb(a, b);
  return Emb(ia, ib);
}

double SignalCache::TripleEmb(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown || triple_dim_ == 0) {
    return bundle_->TripleEmb(a, b);
  }
  return TripleEmb(ia, ib);
}

double SignalCache::Ppdb(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Ppdb(a, b);
  return Ppdb(ia, ib);
}

double SignalCache::Amie(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Amie(a, b);
  return Amie(ia, ib);
}

double SignalCache::Kbp(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Kbp(a, b);
  return Kbp(ia, ib);
}

void SignalCache::RegisterProblem(const JoclProblem& problem,
                                  const CuratedKb& ckb) {
  for (const auto* surfaces :
       {&problem.subject_surfaces, &problem.predicate_surfaces,
        &problem.object_surfaces}) {
    for (const auto& surface : *surfaces) Add(surface);
  }
  // Candidate entity names (F4/F6 query Emb/Ppdb against them).
  for (const auto* candidates :
       {&problem.subject_candidates, &problem.object_candidates}) {
    for (const auto& list : *candidates) {
      for (const auto& candidate : list) {
        Add(ckb.entity(candidate.id).name);
      }
    }
  }
  // Relation names and aliases (F5 takes the best match over all of them).
  for (const auto& list : problem.predicate_candidates) {
    for (const auto& candidate : list) {
      Add(ckb.relation(candidate.id).name);
      for (const auto& alias : ckb.RelationAliases(candidate.id)) {
        Add(alias);
      }
    }
  }
}

SignalCache SignalCache::ForProblem(const JoclProblem& problem,
                                    const SignalBundle& signals,
                                    const CuratedKb& ckb) {
  SignalCache cache;
  cache.RegisterProblem(problem, ckb);
  cache.Finalize(signals);
  return cache;
}

SignalCache SignalCache::ForPhrases(const std::vector<std::string>& phrases,
                                    const SignalBundle& signals,
                                    const SignalCacheFamilies& families) {
  SignalCache cache;
  for (const auto& phrase : phrases) cache.Add(phrase);
  cache.Finalize(signals, families);
  return cache;
}

}  // namespace jocl
