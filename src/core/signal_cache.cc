#include "core/signal_cache.h"

#include <cmath>

#include "util/logging.h"

namespace jocl {

size_t SignalCache::Add(std::string_view phrase) {
  auto it = index_.find(phrase);
  if (it != index_.end()) return it->second;
  phrases_.emplace_back(phrase);
  size_t id = phrases_.size() - 1;
  index_.emplace(std::string_view(phrases_.back()), id);
  return id;
}

void SignalCache::BuildArena(const EmbeddingTable& table,
                             std::vector<float>* unit,
                             std::vector<uint8_t>* has, size_t* dim) const {
  *dim = table.dim();
  unit->assign(phrases_.size() * *dim, 0.0f);
  has->assign(phrases_.size(), 0);
  for (size_t i = 0; i < phrases_.size(); ++i) {
    std::vector<float> v = table.PhraseVector(phrases_[i]);
    double norm = 0.0;
    for (float x : v) norm += static_cast<double>(x) * x;
    if (norm <= 0.0) continue;  // no known token: neutral fallback
    norm = std::sqrt(norm);
    float* row = unit->data() + i * *dim;
    for (size_t d = 0; d < *dim; ++d) {
      row[d] = static_cast<float>(v[d] / norm);
    }
    (*has)[i] = 1;
  }
}

void SignalCache::Finalize(const SignalBundle& signals,
                           const SignalCacheFamilies& families) {
  bundle_ = &signals;
  families_ = families;
  const size_t n = phrases_.size();

  if (families.embeddings) {
    BuildArena(signals.embeddings, &unit_, &has_vec_, &dim_);
  }
  if (families.triple_embeddings) {
    BuildArena(signals.triple_embeddings, &triple_unit_, &has_triple_vec_,
               &triple_dim_);
  }

  // PPDB representatives, interned.
  if (families.ppdb) {
    ppdb_rep_.assign(n, -1);
    if (signals.ppdb != nullptr) {
      std::unordered_map<std::string, int32_t> rep_ids;
      for (size_t i = 0; i < n; ++i) {
        auto rep = signals.ppdb->Representative(phrases_[i]);
        if (!rep.has_value()) continue;
        auto [it, inserted] =
            rep_ids.emplace(std::move(*rep),
                            static_cast<int32_t>(rep_ids.size()));
        ppdb_rep_[i] = it->second;
      }
    }
  }

  // AMIE: interned normalized forms, evidence flags, and the miner's
  // bidirectional equivalences mapped onto norm-id pairs so the pair
  // query never touches a string again.
  if (families.amie) {
    amie_norm_id_.assign(n, -1);
    amie_evidence_.assign(n, 0);
    amie_equivalent_.clear();
    std::unordered_map<std::string, int32_t> norm_ids;
    for (size_t i = 0; i < n; ++i) {
      std::string norm = signals.amie.NormalizedForm(phrases_[i]);
      bool evidence = signals.amie.HasEvidenceNormalized(norm);
      auto [it, inserted] =
          norm_ids.emplace(std::move(norm),
                           static_cast<int32_t>(norm_ids.size()));
      amie_norm_id_[i] = it->second;
      amie_evidence_[i] = evidence ? 1 : 0;
    }
    // rules() holds every accepted unidirectional rule; a bidirectional
    // presence is exactly the miner's equivalence relation.
    std::unordered_set<uint64_t> directed;
    for (const AmieRule& rule : signals.amie.rules()) {
      auto a = norm_ids.find(rule.antecedent);
      auto b = norm_ids.find(rule.consequent);
      if (a == norm_ids.end() || b == norm_ids.end()) continue;
      uint64_t forward = (static_cast<uint64_t>(
                              static_cast<uint32_t>(a->second))
                          << 32) |
                         static_cast<uint32_t>(b->second);
      uint64_t backward = (static_cast<uint64_t>(
                               static_cast<uint32_t>(b->second))
                           << 32) |
                          static_cast<uint32_t>(a->second);
      directed.insert(forward);
      if (directed.count(backward) > 0) {
        amie_equivalent_.insert(PairKey(a->second, b->second));
      }
    }
  }

  // KBP classifications.
  if (families.kbp) {
    kbp_class_.assign(n, kNilId);
    for (size_t i = 0; i < n; ++i) {
      kbp_class_[i] = signals.kbp.Classify(phrases_[i]);
    }
  }

  JOCL_LOG(kDebug) << "signal cache: " << n << " phrases, emb dim " << dim_
                   << (families.triple_embeddings ? " (+triple arena)" : "");
}

double SignalCache::Amie(size_t a, size_t b) const {
  if (!families_.amie) return bundle_->Amie(phrases_[a], phrases_[b]);
  // Mirrors SignalBundle::Amie: rule-or-same-norm-form wins, then the
  // absence-is-neutral gate on mining evidence.
  if (amie_norm_id_[a] == amie_norm_id_[b]) return 1.0;
  if (amie_equivalent_.count(PairKey(amie_norm_id_[a], amie_norm_id_[b])) >
      0) {
    return 1.0;
  }
  if (!amie_evidence_[a] || !amie_evidence_[b]) return 0.5;
  return 0.0;
}

double SignalCache::Emb(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Emb(a, b);
  return Emb(ia, ib);
}

double SignalCache::TripleEmb(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown || triple_dim_ == 0) {
    return bundle_->TripleEmb(a, b);
  }
  return TripleEmb(ia, ib);
}

double SignalCache::Ppdb(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Ppdb(a, b);
  return Ppdb(ia, ib);
}

double SignalCache::Amie(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Amie(a, b);
  return Amie(ia, ib);
}

double SignalCache::Kbp(std::string_view a, std::string_view b) const {
  size_t ia = IdOf(a);
  size_t ib = IdOf(b);
  if (ia == kUnknown || ib == kUnknown) return bundle_->Kbp(a, b);
  return Kbp(ia, ib);
}

SignalCache SignalCache::ForProblem(const JoclProblem& problem,
                                    const SignalBundle& signals,
                                    const CuratedKb& ckb) {
  SignalCache cache;
  for (const auto* surfaces :
       {&problem.subject_surfaces, &problem.predicate_surfaces,
        &problem.object_surfaces}) {
    for (const auto& surface : *surfaces) cache.Add(surface);
  }
  // Candidate entity names (F4/F6 query Emb/Ppdb against them).
  for (const auto* candidates :
       {&problem.subject_candidates, &problem.object_candidates}) {
    for (const auto& list : *candidates) {
      for (const auto& candidate : list) {
        cache.Add(ckb.entity(candidate.id).name);
      }
    }
  }
  // Relation names and aliases (F5 takes the best match over all of them).
  for (const auto& list : problem.predicate_candidates) {
    for (const auto& candidate : list) {
      cache.Add(ckb.relation(candidate.id).name);
      for (const auto& alias : ckb.RelationAliases(candidate.id)) {
        cache.Add(alias);
      }
    }
  }
  cache.Finalize(signals);
  return cache;
}

SignalCache SignalCache::ForPhrases(const std::vector<std::string>& phrases,
                                    const SignalBundle& signals,
                                    const SignalCacheFamilies& families) {
  SignalCache cache;
  for (const auto& phrase : phrases) cache.Add(phrase);
  cache.Finalize(signals, families);
  return cache;
}

}  // namespace jocl
