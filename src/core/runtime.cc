#include "core/runtime.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <thread>

#include "core/decode.h"
#include "core/graph_builder.h"
#include "graph/inference.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace jocl {
namespace {

/// Per-shard outputs that are not part of the scattered beliefs.
struct ShardOutcome {
  LbpResult diagnostics;  // marginals cleared (beliefs carry them)
  size_t variables = 0;
  size_t factors = 0;
};

/// Folds one shard's convergence diagnostics into the merged result.
/// max/AND/elementwise-max are associative, so folding per-shard
/// aggregates reproduces the monolithic engine's own cross-component
/// aggregation bit for bit.
void MergeDiagnostics(const LbpResult& shard, LbpResult* merged) {
  merged->iterations = std::max(merged->iterations, shard.iterations);
  merged->converged = merged->converged && shard.converged;
  merged->final_residual =
      std::max(merged->final_residual, shard.final_residual);
  if (shard.residual_history.size() > merged->residual_history.size()) {
    merged->residual_history.resize(shard.residual_history.size(), 0.0);
  }
  for (size_t i = 0; i < shard.residual_history.size(); ++i) {
    merged->residual_history[i] =
        std::max(merged->residual_history[i], shard.residual_history[i]);
  }
}

}  // namespace

JoclRuntime::JoclRuntime(JoclOptions options, RuntimeOptions runtime)
    : options_(std::move(options)), runtime_(runtime) {}

Result<JoclResult> JoclRuntime::Infer(const Dataset& dataset,
                                      const SignalBundle& signals,
                                      const std::vector<size_t>& triple_subset,
                                      std::vector<double> weights,
                                      RuntimeStats* stats) const {
  if (weights.empty()) weights = Jocl::DefaultWeights();
  if (weights.size() != WeightLayout::kCount) {
    return Status::InvalidArgument("weights must have WeightLayout::kCount "
                                   "entries");
  }
  RuntimeStats local_stats;
  Stopwatch watch;

  // ---- global stages: problem, signal cache, partition --------------------
  JoclProblem problem =
      BuildProblem(dataset, signals, triple_subset, options_.problem);
  local_stats.problem_seconds = watch.ElapsedSeconds();

  watch.Reset();
  SignalCache cache = SignalCache::ForProblem(problem, signals, dataset.ckb);
  local_stats.cache_seconds = watch.ElapsedSeconds();

  watch.Reset();
  ShardPlan plan = PartitionProblem(problem, runtime_.max_shards);
  local_stats.partition_seconds = watch.ElapsedSeconds();
  local_stats.shards = plan.shards.size();
  local_stats.components = plan.component_count;

  // ---- per-shard build→compile→infer→extract on a worker pool -------------
  watch.Reset();
  JoclBeliefs beliefs;
  if (options_.builder.enable_canonicalization) {
    beliefs.x_marg.resize(problem.subject_pairs.size());
    beliefs.x_state.resize(problem.subject_pairs.size());
    beliefs.y_marg.resize(problem.predicate_pairs.size());
    beliefs.y_state.resize(problem.predicate_pairs.size());
    beliefs.z_marg.resize(problem.object_pairs.size());
    beliefs.z_state.resize(problem.object_pairs.size());
  }
  if (options_.builder.enable_linking) {
    beliefs.es_marg.resize(problem.triples.size());
    beliefs.es_state.resize(problem.triples.size());
    beliefs.rp_marg.resize(problem.triples.size());
    beliefs.rp_state.resize(problem.triples.size());
    beliefs.eo_marg.resize(problem.triples.size());
    beliefs.eo_state.resize(problem.triples.size());
  }
  std::vector<ShardOutcome> outcomes(plan.shards.size());

  // Worker/engine thread split: with fewer shards than requested threads
  // (the extreme: max_shards = 1), the leftover parallelism moves inside
  // the engine, whose component-parallel execution is bit-identical to
  // sequential — the output guarantee is unaffected either way.
  size_t requested_threads =
      runtime_.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : runtime_.num_threads;
  size_t n_threads =
      std::min(requested_threads, std::max<size_t>(1, plan.shards.size()));
  size_t engine_threads = 1;
  if (!plan.shards.empty() && plan.shards.size() < requested_threads) {
    engine_threads =
        (requested_threads + plan.shards.size() - 1) / plan.shards.size();
  }

  auto run_shard = [&](size_t s) {
    const ProblemShard& shard = plan.shards[s];
    JoclGraph jgraph =
        BuildJoclGraph(shard.problem, cache, dataset.ckb, options_.builder);
    LbpOptions lbp_options = options_.inference;
    lbp_options.factor_schedule = jgraph.schedule;
    lbp_options.num_threads = engine_threads;
    std::unique_ptr<InferenceEngine> engine = CreateInferenceEngine(
        options_.inference_backend, &jgraph.graph, &weights, lbp_options);
    ShardOutcome& outcome = outcomes[s];
    outcome.diagnostics = engine->Run();
    outcome.diagnostics.marginals.clear();
    outcome.variables = jgraph.graph.variable_count();
    outcome.factors = jgraph.graph.factor_count();
    std::vector<size_t> decoded = engine->Decode();

    // Scatter into the global belief arrays; shards partition the pair
    // and triple spaces, so every write below hits a slot no other shard
    // touches.
    if (options_.builder.enable_canonicalization) {
      auto scatter_pairs = [&](const std::vector<VariableId>& vars,
                               const std::vector<size_t>& pair_map,
                               std::vector<std::vector<double>>* marg,
                               std::vector<size_t>* state) {
        for (size_t p = 0; p < vars.size(); ++p) {
          (*marg)[pair_map[p]] = engine->Marginal(vars[p]);
          (*state)[pair_map[p]] = decoded[vars[p]];
        }
      };
      scatter_pairs(jgraph.x_vars, shard.subject_pair_map, &beliefs.x_marg,
                    &beliefs.x_state);
      scatter_pairs(jgraph.y_vars, shard.predicate_pair_map, &beliefs.y_marg,
                    &beliefs.y_state);
      scatter_pairs(jgraph.z_vars, shard.object_pair_map, &beliefs.z_marg,
                    &beliefs.z_state);
    }
    if (options_.builder.enable_linking) {
      for (size_t t = 0; t < shard.triple_map.size(); ++t) {
        size_t global = shard.triple_map[t];
        beliefs.es_marg[global] = engine->Marginal(jgraph.es_vars[t]);
        beliefs.es_state[global] = decoded[jgraph.es_vars[t]];
        beliefs.rp_marg[global] = engine->Marginal(jgraph.rp_vars[t]);
        beliefs.rp_state[global] = decoded[jgraph.rp_vars[t]];
        beliefs.eo_marg[global] = engine->Marginal(jgraph.eo_vars[t]);
        beliefs.eo_state[global] = decoded[jgraph.eo_vars[t]];
      }
    }
  };

  // Heaviest shards first so stragglers start early; execution order does
  // not affect the output (disjoint writes, order-independent merge).
  std::vector<size_t> queue(plan.shards.size());
  std::iota(queue.begin(), queue.end(), 0);
  std::sort(queue.begin(), queue.end(), [&](size_t a, size_t b) {
    size_t wa = plan.shards[a].triple_map.size();
    size_t wb = plan.shards[b].triple_map.size();
    if (wa != wb) return wa > wb;
    return a < b;
  });
  if (n_threads <= 1) {
    for (size_t s : queue) run_shard(s);
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&]() {
      for (size_t i; (i = next.fetch_add(1)) < queue.size();) {
        run_shard(queue[i]);
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(n_threads);
    for (size_t w = 0; w < n_threads; ++w) threads.emplace_back(worker);
    for (auto& thread : threads) thread.join();
  }
  local_stats.shard_seconds = watch.ElapsedSeconds();

  // ---- merge + global decode ----------------------------------------------
  watch.Reset();
  JoclResult result;
  result.weights = std::move(weights);
  result.triples = problem.triples;
  result.diagnostics.converged = true;
  for (const ShardOutcome& outcome : outcomes) {
    MergeDiagnostics(outcome.diagnostics, &result.diagnostics);
    local_stats.variables += outcome.variables;
    local_stats.factors += outcome.factors;
  }
  // Canonical marginal order, independent of sharding: subject pairs,
  // predicate pairs, object pairs, then es/rp/eo per triple.
  for (const auto* group : {&beliefs.x_marg, &beliefs.y_marg, &beliefs.z_marg,
                            &beliefs.es_marg, &beliefs.rp_marg,
                            &beliefs.eo_marg}) {
    result.diagnostics.marginals.insert(result.diagnostics.marginals.end(),
                                        group->begin(), group->end());
  }

  JointDecodeOptions decode_options;
  decode_options.canonicalization = options_.builder.enable_canonicalization;
  decode_options.linking = options_.builder.enable_linking;
  decode_options.conflict_confidence = options_.conflict_confidence;
  DecodeJointResult(problem, beliefs, decode_options, &result);
  local_stats.decode_seconds = watch.ElapsedSeconds();

  JOCL_LOG(kDebug) << "runtime: " << plan.shards.size() << " shards over "
                   << n_threads << " threads, " << local_stats.variables
                   << " variables, " << local_stats.factors << " factors";
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace jocl
