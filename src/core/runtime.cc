#include "core/runtime.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>

#include "core/decode.h"
#include "core/graph_builder.h"
#include "graph/inference.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/worker_pool.h"

namespace jocl {
namespace {

/// Mirrors a finished run's stats onto the process-wide registry — the
/// single source `/metrics` and the tools read. The handles are
/// function-local statics: first call registers, later calls re-use.
void MirrorRuntimeStats(const RuntimeStats& stats) {
  MetricsRegistry& global = MetricsRegistry::Global();
  static Counter* runs =
      global.AddCounter("jocl_infer_runs_total", "", "Full inference runs");
  static Counter* updates =
      global.AddCounter("jocl_lbp_message_updates_total", "",
                        "LBP message updates across all engines");
  static Counter* pops =
      global.AddCounter("jocl_lbp_residual_pops_total", "",
                        "Residual-schedule priority pops");
  static Counter* skipped =
      global.AddCounter("jocl_lbp_sweeps_skipped_total", "",
                        "Converged sweeps the kernel skipped");
  static Counter* variables = global.AddCounter(
      "jocl_graph_variables_total", "", "Variables across built graphs");
  static Counter* factors = global.AddCounter(
      "jocl_graph_factors_total", "", "Factors across built graphs");
  runs->Add();
  updates->Add(stats.message_updates);
  pops->Add(stats.residual_pops);
  skipped->Add(stats.sweeps_skipped);
  variables->Add(stats.variables);
  factors->Add(stats.factors);
}

}  // namespace

void MergeShardDiagnostics(const LbpResult& shard, LbpResult* merged) {
  merged->iterations = std::max(merged->iterations, shard.iterations);
  merged->converged = merged->converged && shard.converged;
  merged->final_residual =
      std::max(merged->final_residual, shard.final_residual);
  if (shard.residual_history.size() > merged->residual_history.size()) {
    merged->residual_history.resize(shard.residual_history.size(), 0.0);
  }
  for (size_t i = 0; i < shard.residual_history.size(); ++i) {
    merged->residual_history[i] =
        std::max(merged->residual_history[i], shard.residual_history[i]);
  }
  // Kernel counters are totals, not maxima: shards partition the factor
  // set, so the merged run's work is the sum of the shard runs' work.
  merged->message_updates += shard.message_updates;
  merged->residual_pops += shard.residual_pops;
  merged->sweeps_skipped += shard.sweeps_skipped;
}

ShardBeliefs RunShardInference(const JoclProblem& local,
                               const SignalCache& cache, const CuratedKb& ckb,
                               const JoclOptions& options,
                               const std::vector<double>& weights,
                               size_t engine_threads,
                               const ShardWarmStart* warm,
                               ShardRunTimings* timings) {
  Stopwatch watch;
  // Stage spans land on the caller's current track (the pool worker's
  // "shard/<s>" scope); one atomic load each when tracing is off.
  std::optional<ScopedSpan> span;
  span.emplace("build_graph");
  JoclGraph jgraph = BuildJoclGraph(local, cache, ckb, options.builder);
  span.reset();
  LbpOptions lbp_options = options.inference;
  lbp_options.factor_schedule = jgraph.schedule;
  lbp_options.num_threads = engine_threads;
  span.emplace("compile");
  std::unique_ptr<InferenceEngine> engine = CreateInferenceEngine(
      options.inference_backend, &jgraph.graph, &weights, lbp_options);
  if (warm != nullptr) {
    // Map the local-order priors onto variable ids, skipping empty hints.
    auto seed = [&](const std::vector<VariableId>& vars,
                    const std::vector<std::vector<double>>& priors) {
      std::vector<VariableId> ids;
      std::vector<std::vector<double>> values;
      const size_t n = std::min(vars.size(), priors.size());
      for (size_t i = 0; i < n; ++i) {
        if (priors[i].empty()) continue;
        ids.push_back(vars[i]);
        values.push_back(priors[i]);
      }
      if (!ids.empty()) engine->WarmStart(ids, values);
    };
    seed(jgraph.x_vars, warm->x_prior);
    seed(jgraph.y_vars, warm->y_prior);
    seed(jgraph.z_vars, warm->z_prior);
    seed(jgraph.es_vars, warm->es_prior);
    seed(jgraph.rp_vars, warm->rp_prior);
    seed(jgraph.eo_vars, warm->eo_prior);
  }
  span.reset();
  if (timings != nullptr) timings->graph_seconds = watch.ElapsedSeconds();

  watch.Reset();
  span.emplace("infer");
  ShardBeliefs out;
  out.diagnostics = engine->Run();
  out.diagnostics.marginals.clear();
  out.variables = jgraph.graph.variable_count();
  out.factors = jgraph.graph.factor_count();
  std::vector<size_t> decoded = engine->Decode();

  if (options.builder.enable_canonicalization) {
    auto extract_pairs = [&](const std::vector<VariableId>& vars,
                             std::vector<std::vector<double>>* marg,
                             std::vector<size_t>* state) {
      marg->resize(vars.size());
      state->resize(vars.size());
      for (size_t p = 0; p < vars.size(); ++p) {
        (*marg)[p] = engine->Marginal(vars[p]);
        (*state)[p] = decoded[vars[p]];
      }
    };
    extract_pairs(jgraph.x_vars, &out.x_marg, &out.x_state);
    extract_pairs(jgraph.y_vars, &out.y_marg, &out.y_state);
    extract_pairs(jgraph.z_vars, &out.z_marg, &out.z_state);
  }
  if (options.builder.enable_linking) {
    const size_t n = local.triples.size();
    auto extract_links = [&](const std::vector<VariableId>& vars,
                             std::vector<std::vector<double>>* marg,
                             std::vector<size_t>* state) {
      marg->resize(n);
      state->resize(n);
      for (size_t t = 0; t < n; ++t) {
        (*marg)[t] = engine->Marginal(vars[t]);
        (*state)[t] = decoded[vars[t]];
      }
    };
    extract_links(jgraph.es_vars, &out.es_marg, &out.es_state);
    extract_links(jgraph.rp_vars, &out.rp_marg, &out.rp_state);
    extract_links(jgraph.eo_vars, &out.eo_marg, &out.eo_state);
  }
  span.reset();
  if (timings != nullptr) timings->infer_seconds = watch.ElapsedSeconds();
  return out;
}

void SizeJoclBeliefs(const JoclProblem& problem,
                     const GraphBuilderOptions& builder,
                     JoclBeliefs* beliefs) {
  // Sizes in place rather than resetting: a session passes the previous
  // batch's arrays back in, and reusing the inner marginal vectors'
  // capacity turns the per-slot scatter into assignment instead of tens
  // of thousands of fresh allocations. Every slot inside the new sizes is
  // overwritten by the scatters (shards partition the pair and triple
  // spaces), so stale contents never leak into a result.
  if (builder.enable_canonicalization) {
    beliefs->x_marg.resize(problem.subject_pairs.size());
    beliefs->x_state.resize(problem.subject_pairs.size());
    beliefs->y_marg.resize(problem.predicate_pairs.size());
    beliefs->y_state.resize(problem.predicate_pairs.size());
    beliefs->z_marg.resize(problem.object_pairs.size());
    beliefs->z_state.resize(problem.object_pairs.size());
  } else {
    beliefs->x_marg.clear();
    beliefs->x_state.clear();
    beliefs->y_marg.clear();
    beliefs->y_state.clear();
    beliefs->z_marg.clear();
    beliefs->z_state.clear();
  }
  if (builder.enable_linking) {
    beliefs->es_marg.resize(problem.triples.size());
    beliefs->es_state.resize(problem.triples.size());
    beliefs->rp_marg.resize(problem.triples.size());
    beliefs->rp_state.resize(problem.triples.size());
    beliefs->eo_marg.resize(problem.triples.size());
    beliefs->eo_state.resize(problem.triples.size());
  } else {
    beliefs->es_marg.clear();
    beliefs->es_state.clear();
    beliefs->rp_marg.clear();
    beliefs->rp_state.clear();
    beliefs->eo_marg.clear();
    beliefs->eo_state.clear();
  }
}

void ScatterShardBeliefs(const ProblemShard& shard, const ShardBeliefs& local,
                         const GraphBuilderOptions& builder,
                         JoclBeliefs* beliefs) {
  if (builder.enable_canonicalization) {
    auto scatter_pairs = [&](const std::vector<std::vector<double>>& marg,
                             const std::vector<size_t>& state,
                             const std::vector<size_t>& pair_map,
                             std::vector<std::vector<double>>* global_marg,
                             std::vector<size_t>* global_state) {
      for (size_t p = 0; p < pair_map.size(); ++p) {
        (*global_marg)[pair_map[p]] = marg[p];
        (*global_state)[pair_map[p]] = state[p];
      }
    };
    scatter_pairs(local.x_marg, local.x_state, shard.subject_pair_map,
                  &beliefs->x_marg, &beliefs->x_state);
    scatter_pairs(local.y_marg, local.y_state, shard.predicate_pair_map,
                  &beliefs->y_marg, &beliefs->y_state);
    scatter_pairs(local.z_marg, local.z_state, shard.object_pair_map,
                  &beliefs->z_marg, &beliefs->z_state);
  }
  if (builder.enable_linking) {
    for (size_t t = 0; t < shard.triple_map.size(); ++t) {
      size_t global = shard.triple_map[t];
      beliefs->es_marg[global] = local.es_marg[t];
      beliefs->es_state[global] = local.es_state[t];
      beliefs->rp_marg[global] = local.rp_marg[t];
      beliefs->rp_state[global] = local.rp_state[t];
      beliefs->eo_marg[global] = local.eo_marg[t];
      beliefs->eo_state[global] = local.eo_state[t];
    }
  }
}

JoclResult AssembleJoclResult(const JoclProblem& problem,
                              const JoclBeliefs& beliefs,
                              const JoclOptions& options,
                              std::vector<double> weights,
                              LbpResult diagnostics,
                              size_t decode_threads) {
  JoclResult result;
  result.weights = std::move(weights);
  result.triples = problem.triples;
  result.diagnostics = std::move(diagnostics);
  // Canonical marginal order, independent of sharding: subject pairs,
  // predicate pairs, object pairs, then es/rp/eo per triple. Filled by
  // element assignment into whatever storage \p diagnostics arrived with:
  // a session passes its previous result's marginal list back in, so the
  // steady-state rebuild reuses those inner vectors instead of
  // reallocating every marginal.
  auto& marginals = result.diagnostics.marginals;
  const auto groups = {&beliefs.x_marg,  &beliefs.y_marg, &beliefs.z_marg,
                       &beliefs.es_marg, &beliefs.rp_marg, &beliefs.eo_marg};
  size_t total = 0;
  for (const auto* group : groups) total += group->size();
  marginals.resize(total);
  size_t slot = 0;
  for (const auto* group : groups) {
    for (const std::vector<double>& marginal : *group) {
      marginals[slot++] = marginal;
    }
  }

  JointDecodeOptions decode_options;
  decode_options.canonicalization = options.builder.enable_canonicalization;
  decode_options.linking = options.builder.enable_linking;
  decode_options.conflict_confidence = options.conflict_confidence;
  decode_options.threads = decode_threads == 0 ? 1 : decode_threads;
  DecodeJointResult(problem, beliefs, decode_options, &result);
  return result;
}

JoclRuntime::JoclRuntime(JoclOptions options, RuntimeOptions runtime)
    : options_(std::move(options)), runtime_(runtime) {}

Result<JoclResult> JoclRuntime::Infer(const Dataset& dataset,
                                      const SignalBundle& signals,
                                      const std::vector<size_t>& triple_subset,
                                      std::vector<double> weights,
                                      RuntimeStats* stats) const {
  if (weights.empty()) weights = Jocl::DefaultWeights();
  if (weights.size() != WeightLayout::kCount) {
    return Status::InvalidArgument("weights must have WeightLayout::kCount "
                                   "entries");
  }
  RuntimeStats local_stats;
  Stopwatch watch;
  ScopedSpan infer_span("runtime_infer");
  std::optional<ScopedSpan> span;

  // ---- global stages: problem, signal cache, partition --------------------
  span.emplace("build_problem");
  JoclProblem problem =
      BuildProblem(dataset, signals, triple_subset, options_.problem);
  span.reset();
  local_stats.problem_seconds = watch.ElapsedSeconds();

  watch.Reset();
  span.emplace("signal_cache");
  SignalCache cache = SignalCache::ForProblem(problem, signals, dataset.ckb);
  span.reset();
  local_stats.cache_seconds = watch.ElapsedSeconds();

  watch.Reset();
  span.emplace("partition");
  ShardPlan plan = PartitionProblem(problem, runtime_.max_shards);
  span.reset();
  local_stats.partition_seconds = watch.ElapsedSeconds();
  local_stats.shards = plan.shards.size();
  local_stats.components = plan.component_count;

  // ---- per-shard build→compile→infer→extract on a worker pool -------------
  watch.Reset();
  JoclBeliefs beliefs;
  SizeJoclBeliefs(problem, options_.builder, &beliefs);
  std::vector<ShardBeliefs> outcomes(plan.shards.size());
  std::vector<ShardRunTimings> timings(plan.shards.size());

  // Worker/engine thread split: with fewer shards than requested threads
  // (the extreme: max_shards = 1), the leftover parallelism moves inside
  // the engine, whose component-parallel execution is bit-identical to
  // sequential — the output guarantee is unaffected either way.
  size_t requested_threads =
      runtime_.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : runtime_.num_threads;
  size_t n_threads =
      std::min(requested_threads, std::max<size_t>(1, plan.shards.size()));
  size_t engine_threads = 1;
  if (!plan.shards.empty() && plan.shards.size() < requested_threads) {
    engine_threads =
        (requested_threads + plan.shards.size() - 1) / plan.shards.size();
  }

  auto run_shard = [&](size_t s) {
    // Logical track "shard/<s>": the plan index, not the worker thread,
    // keys the trace — so dumps are identical across thread counts.
    TraceTrackScope track("shard/", s);
    ScopedSpan span("shard_run");
    const ProblemShard& shard = plan.shards[s];
    outcomes[s] =
        RunShardInference(shard.problem, cache, dataset.ckb, options_,
                          weights, engine_threads, nullptr, &timings[s]);
    // Shards partition the pair and triple spaces, so every scatter write
    // hits a slot no other shard touches.
    ScatterShardBeliefs(shard, outcomes[s], options_.builder, &beliefs);
    // Only diagnostics/variables/factors are read after the scatter;
    // dropping the local belief copies keeps peak marginal memory at one
    // global set (the session, which does need them, keeps its own).
    ShardBeliefs trimmed;
    trimmed.diagnostics = std::move(outcomes[s].diagnostics);
    trimmed.variables = outcomes[s].variables;
    trimmed.factors = outcomes[s].factors;
    outcomes[s] = std::move(trimmed);
  };

  // Heaviest shards first so stragglers start early; execution order does
  // not affect the output (disjoint writes, order-independent merge).
  RunOnPool(
      plan.shards.size(), n_threads,
      [&](size_t s) { return plan.shards[s].triple_map.size(); }, run_shard);
  local_stats.shard_seconds = watch.ElapsedSeconds();

  // ---- merge + global decode ----------------------------------------------
  watch.Reset();
  span.emplace("decode");
  LbpResult diagnostics;
  diagnostics.converged = true;
  for (size_t s = 0; s < outcomes.size(); ++s) {
    MergeShardDiagnostics(outcomes[s].diagnostics, &diagnostics);
    local_stats.variables += outcomes[s].variables;
    local_stats.factors += outcomes[s].factors;
    local_stats.graph_seconds += timings[s].graph_seconds;
    local_stats.infer_seconds += timings[s].infer_seconds;
  }
  local_stats.message_updates = diagnostics.message_updates;
  local_stats.residual_pops = diagnostics.residual_pops;
  local_stats.sweeps_skipped = diagnostics.sweeps_skipped;
  JoclResult result = AssembleJoclResult(problem, beliefs, options_,
                                         std::move(weights),
                                         std::move(diagnostics),
                                         requested_threads);
  span.reset();
  local_stats.decode_seconds = watch.ElapsedSeconds();

  JOCL_LOG(kDebug) << "runtime: " << plan.shards.size() << " shards over "
                   << n_threads << " threads, " << local_stats.variables
                   << " variables, " << local_stats.factors << " factors";
  MirrorRuntimeStats(local_stats);
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace jocl
