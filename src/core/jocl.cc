#include "core/jocl.h"

#include <algorithm>
#include <utility>

#include "core/runtime.h"
#include "core/signal_cache.h"
#include "util/logging.h"
#include "util/rng.h"

namespace jocl {
namespace {

// Finds the linking-variable state of a gold id in a candidate list:
// state 0 is NIL, state k is candidate k-1.
template <typename Candidate>
size_t GoldState(const std::vector<Candidate>& candidates, int64_t gold) {
  if (gold == kNilId) return 0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c].id == gold) return c + 1;
  }
  return 0;  // gold not reachable -> best achievable label is NIL
}

}  // namespace

JoclOptions JoclOptions::CanonicalizationOnly() {
  JoclOptions options;
  options.builder.enable_linking = false;
  options.builder.enable_consistency = false;
  options.builder.enable_fact_inclusion = false;
  return options;
}

JoclOptions JoclOptions::LinkingOnly() {
  JoclOptions options;
  options.builder.enable_canonicalization = false;
  options.builder.enable_transitive = false;
  options.builder.enable_consistency = false;
  return options;
}

JoclOptions JoclOptions::WithoutConsistency() {
  JoclOptions options;
  options.builder.enable_consistency = false;
  return options;
}

Jocl::Jocl(JoclOptions options) : options_(std::move(options)) {}

std::vector<double> Jocl::DefaultWeights() {
  return std::vector<double>(WeightLayout::kCount, 1.0);
}

Result<std::vector<double>> Jocl::LearnWeights(
    const Dataset& dataset, const SignalBundle& signals) const {
  if (dataset.validation_triples.empty()) return DefaultWeights();

  // Deterministic subsample of the validation split.
  std::vector<size_t> subset = dataset.validation_triples;
  if (subset.size() > options_.max_learning_triples) {
    Rng rng(options_.seed);
    rng.Shuffle(&subset);
    subset.resize(options_.max_learning_triples);
  }

  JoclProblem problem =
      BuildProblem(dataset, signals, subset, options_.problem);
  // The learner's graph build is the pipeline's "second" build; the cache
  // keeps its signal queries to dot products and id compares.
  SignalCache cache = SignalCache::ForProblem(problem, signals, dataset.ckb);
  JoclGraph jgraph =
      BuildJoclGraph(problem, cache, dataset.ckb, options_.builder);

  // ---- labels -------------------------------------------------------------
  std::vector<std::pair<VariableId, size_t>> labels;
  auto label_pairs = [&](const std::vector<SurfacePair>& pairs,
                         const std::vector<VariableId>& vars,
                         const std::vector<size_t>& representative,
                         auto gold_group_of) {
    for (size_t p = 0; p < pairs.size(); ++p) {
      int64_t group_a = gold_group_of(representative[pairs[p].a]);
      int64_t group_b = gold_group_of(representative[pairs[p].b]);
      labels.emplace_back(vars[p], group_a == group_b ? 1 : 0);
    }
  };
  if (options_.builder.enable_canonicalization) {
    label_pairs(problem.subject_pairs, jgraph.x_vars, problem.subject_rep,
                [&](size_t local) {
                  return dataset.gold_np_group[problem.triples[local] * 2];
                });
    label_pairs(problem.predicate_pairs, jgraph.y_vars, problem.predicate_rep,
                [&](size_t local) {
                  return dataset.gold_rp_group[problem.triples[local]];
                });
    label_pairs(problem.object_pairs, jgraph.z_vars, problem.object_rep,
                [&](size_t local) {
                  return dataset.gold_np_group[problem.triples[local] * 2 + 1];
                });
  }
  if (options_.builder.enable_linking) {
    for (size_t t = 0; t < problem.triples.size(); ++t) {
      size_t global = problem.triples[t];
      labels.emplace_back(
          jgraph.es_vars[t],
          GoldState(problem.subject_candidates[problem.subject_of[t]],
                    dataset.gold_subject_entity[global]));
      labels.emplace_back(
          jgraph.rp_vars[t],
          GoldState(problem.predicate_candidates[problem.predicate_of[t]],
                    dataset.gold_relation[global]));
      labels.emplace_back(
          jgraph.eo_vars[t],
          GoldState(problem.object_candidates[problem.object_of[t]],
                    dataset.gold_object_entity[global]));
    }
  }

  LearnerOptions learner_options = options_.learner;
  learner_options.lbp.factor_schedule = jgraph.schedule;
  FactorGraphLearner learner(learner_options);
  LearnerResult learned =
      learner.Learn(&jgraph.graph, labels, DefaultWeights());
  JOCL_LOG(kInfo) << "learned weights over " << labels.size() << " labels in "
                  << learned.trace.size() << " iterations";
  return learned.weights;
}

Result<JoclResult> Jocl::Infer(const Dataset& dataset,
                               const SignalBundle& signals,
                               const std::vector<size_t>& triple_subset,
                               std::vector<double> weights) const {
  RuntimeOptions runtime_options;
  runtime_options.num_threads = options_.runtime_threads;
  runtime_options.max_shards = options_.runtime_shards;
  JoclRuntime runtime(options_, runtime_options);
  return runtime.Infer(dataset, signals, triple_subset, std::move(weights));
}

Result<JoclResult> Jocl::Run(const Dataset& dataset,
                             const SignalBundle& signals,
                             const std::vector<size_t>& triple_subset) const {
  Result<std::vector<double>> weights = LearnWeights(dataset, signals);
  if (!weights.ok()) return weights.status();
  return Infer(dataset, signals, triple_subset, weights.MoveValueOrDie());
}

}  // namespace jocl
