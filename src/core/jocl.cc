#include "core/jocl.h"

#include <algorithm>
#include <utility>

#include "core/runtime.h"
#include "core/sharded_learner.h"
#include "core/signal_cache.h"
#include "util/logging.h"
#include "util/rng.h"

namespace jocl {

JoclOptions JoclOptions::CanonicalizationOnly() {
  JoclOptions options;
  options.builder.enable_linking = false;
  options.builder.enable_consistency = false;
  options.builder.enable_fact_inclusion = false;
  return options;
}

JoclOptions JoclOptions::LinkingOnly() {
  JoclOptions options;
  options.builder.enable_canonicalization = false;
  options.builder.enable_transitive = false;
  options.builder.enable_consistency = false;
  return options;
}

JoclOptions JoclOptions::WithoutConsistency() {
  JoclOptions options;
  options.builder.enable_consistency = false;
  return options;
}

Jocl::Jocl(JoclOptions options) : options_(std::move(options)) {}

std::vector<double> Jocl::DefaultWeights() {
  return std::vector<double>(WeightLayout::kCount, 1.0);
}

Result<std::vector<double>> Jocl::LearnWeights(
    const Dataset& dataset, const SignalBundle& signals) const {
  if (dataset.validation_triples.empty()) return DefaultWeights();

  // Deterministic subsample of the validation split.
  std::vector<size_t> subset = dataset.validation_triples;
  if (subset.size() > options_.max_learning_triples) {
    Rng rng(options_.seed);
    rng.Shuffle(&subset);
    subset.resize(options_.max_learning_triples);
  }

  // The sharded learner partitions the labeled problem, builds one
  // compiled graph per component through the SignalCache path, and runs
  // the clamped/free passes component-parallel — the learning-side twin of
  // the Infer runtime below (same thread/shard knobs, same determinism).
  LearnRuntimeOptions learn_runtime;
  learn_runtime.num_threads = options_.runtime_threads;
  learn_runtime.max_shards = options_.runtime_shards;
  ShardedLearner learner(options_, learn_runtime);
  LearnerRunStats learn_stats;
  Result<LearnerResult> learned =
      learner.Learn(dataset, signals, subset, DefaultWeights(), &learn_stats);
  if (!learned.ok()) return learned.status();
  JOCL_LOG(kInfo) << "learned weights over " << learn_stats.labels
                  << " labels (" << learn_stats.components
                  << " components) in " << learned.ValueOrDie().trace.size()
                  << " iterations";
  return learned.MoveValueOrDie().weights;
}

Result<JoclResult> Jocl::Infer(const Dataset& dataset,
                               const SignalBundle& signals,
                               const std::vector<size_t>& triple_subset,
                               std::vector<double> weights) const {
  RuntimeOptions runtime_options;
  runtime_options.num_threads = options_.runtime_threads;
  runtime_options.max_shards = options_.runtime_shards;
  JoclRuntime runtime(options_, runtime_options);
  return runtime.Infer(dataset, signals, triple_subset, std::move(weights));
}

Result<JoclResult> Jocl::Run(const Dataset& dataset,
                             const SignalBundle& signals,
                             const std::vector<size_t>& triple_subset) const {
  Result<std::vector<double>> weights = LearnWeights(dataset, signals);
  if (!weights.ok()) return weights.status();
  return Infer(dataset, signals, triple_subset, weights.MoveValueOrDie());
}

}  // namespace jocl
