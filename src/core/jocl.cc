#include "core/jocl.h"

#include "core/decode.h"

#include <algorithm>
#include <memory>
#include <tuple>
#include <unordered_map>

#include "cluster/hac.h"
#include "cluster/union_find.h"
#include "util/logging.h"
#include "util/rng.h"

namespace jocl {
namespace {


// Finds the linking-variable state of a gold id in a candidate list:
// state 0 is NIL, state k is candidate k-1.
template <typename Candidate>
size_t GoldState(const std::vector<Candidate>& candidates, int64_t gold) {
  if (gold == kNilId) return 0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c].id == gold) return c + 1;
  }
  return 0;  // gold not reachable -> best achievable label is NIL
}

template <typename Candidate>
int64_t StateToId(const std::vector<Candidate>& candidates, size_t state) {
  if (state == 0 || state > candidates.size()) return kNilId;
  return candidates[state - 1].id;
}

}  // namespace

JoclOptions JoclOptions::CanonicalizationOnly() {
  JoclOptions options;
  options.builder.enable_linking = false;
  options.builder.enable_consistency = false;
  options.builder.enable_fact_inclusion = false;
  return options;
}

JoclOptions JoclOptions::LinkingOnly() {
  JoclOptions options;
  options.builder.enable_canonicalization = false;
  options.builder.enable_transitive = false;
  options.builder.enable_consistency = false;
  return options;
}

JoclOptions JoclOptions::WithoutConsistency() {
  JoclOptions options;
  options.builder.enable_consistency = false;
  return options;
}

Jocl::Jocl(JoclOptions options) : options_(std::move(options)) {}

std::vector<double> Jocl::DefaultWeights() {
  return std::vector<double>(WeightLayout::kCount, 1.0);
}

Result<std::vector<double>> Jocl::LearnWeights(
    const Dataset& dataset, const SignalBundle& signals) const {
  if (dataset.validation_triples.empty()) return DefaultWeights();

  // Deterministic subsample of the validation split.
  std::vector<size_t> subset = dataset.validation_triples;
  if (subset.size() > options_.max_learning_triples) {
    Rng rng(options_.seed);
    rng.Shuffle(&subset);
    subset.resize(options_.max_learning_triples);
  }

  JoclProblem problem =
      BuildProblem(dataset, signals, subset, options_.problem);
  JoclGraph jgraph =
      BuildJoclGraph(problem, signals, dataset.ckb, options_.builder);

  // ---- labels -------------------------------------------------------------
  std::vector<std::pair<VariableId, size_t>> labels;
  auto label_pairs = [&](const std::vector<SurfacePair>& pairs,
                         const std::vector<VariableId>& vars,
                         const std::vector<size_t>& representative,
                         auto gold_group_of) {
    for (size_t p = 0; p < pairs.size(); ++p) {
      int64_t group_a = gold_group_of(representative[pairs[p].a]);
      int64_t group_b = gold_group_of(representative[pairs[p].b]);
      labels.emplace_back(vars[p], group_a == group_b ? 1 : 0);
    }
  };
  if (options_.builder.enable_canonicalization) {
    label_pairs(problem.subject_pairs, jgraph.x_vars, problem.subject_rep,
                [&](size_t local) {
                  return dataset.gold_np_group[problem.triples[local] * 2];
                });
    label_pairs(problem.predicate_pairs, jgraph.y_vars, problem.predicate_rep,
                [&](size_t local) {
                  return dataset.gold_rp_group[problem.triples[local]];
                });
    label_pairs(problem.object_pairs, jgraph.z_vars, problem.object_rep,
                [&](size_t local) {
                  return dataset.gold_np_group[problem.triples[local] * 2 + 1];
                });
  }
  if (options_.builder.enable_linking) {
    for (size_t t = 0; t < problem.triples.size(); ++t) {
      size_t global = problem.triples[t];
      labels.emplace_back(
          jgraph.es_vars[t],
          GoldState(problem.subject_candidates[problem.subject_of[t]],
                    dataset.gold_subject_entity[global]));
      labels.emplace_back(
          jgraph.rp_vars[t],
          GoldState(problem.predicate_candidates[problem.predicate_of[t]],
                    dataset.gold_relation[global]));
      labels.emplace_back(
          jgraph.eo_vars[t],
          GoldState(problem.object_candidates[problem.object_of[t]],
                    dataset.gold_object_entity[global]));
    }
  }

  LearnerOptions learner_options = options_.learner;
  learner_options.lbp.factor_schedule = jgraph.schedule;
  FactorGraphLearner learner(learner_options);
  LearnerResult learned =
      learner.Learn(&jgraph.graph, labels, DefaultWeights());
  JOCL_LOG(kInfo) << "learned weights over " << labels.size() << " labels in "
                  << learned.trace.size() << " iterations";
  return learned.weights;
}

Result<JoclResult> Jocl::Infer(const Dataset& dataset,
                               const SignalBundle& signals,
                               const std::vector<size_t>& triple_subset,
                               std::vector<double> weights) const {
  if (weights.empty()) weights = DefaultWeights();
  if (weights.size() != WeightLayout::kCount) {
    return Status::InvalidArgument("weights must have WeightLayout::kCount "
                                   "entries");
  }

  JoclProblem problem =
      BuildProblem(dataset, signals, triple_subset, options_.problem);
  JoclGraph jgraph =
      BuildJoclGraph(problem, signals, dataset.ckb, options_.builder);

  LbpOptions lbp_options = options_.inference;
  lbp_options.factor_schedule = jgraph.schedule;
  std::unique_ptr<InferenceEngine> engine_ptr = CreateInferenceEngine(
      options_.inference_backend, &jgraph.graph, &weights, lbp_options);
  InferenceEngine& engine = *engine_ptr;

  JoclResult result;
  result.diagnostics = engine.Run();
  result.weights = weights;
  result.triples = problem.triples;
  std::vector<size_t> decoded = engine.Decode();

  const size_t n = problem.triples.size();
  const size_t n_subject_surfaces = problem.subject_surfaces.size();
  const size_t n_object_surfaces = problem.object_surfaces.size();

  // ---- linking decode -------------------------------------------------------
  result.np_link.assign(n * 2, kNilId);
  result.rp_link.assign(n, kNilId);
  if (options_.builder.enable_linking) {
    for (size_t t = 0; t < n; ++t) {
      result.np_link[t * 2] =
          StateToId(problem.subject_candidates[problem.subject_of[t]],
                    decoded[jgraph.es_vars[t]]);
      result.np_link[t * 2 + 1] =
          StateToId(problem.object_candidates[problem.object_of[t]],
                    decoded[jgraph.eo_vars[t]]);
      result.rp_link[t] =
          StateToId(problem.predicate_candidates[problem.predicate_of[t]],
                    decoded[jgraph.rp_vars[t]]);
    }
  }

  // ---- canonicalization decode ----------------------------------------------
  // Node space: subject surfaces then object surfaces; identical strings
  // across the two roles are pre-merged with weight-1 edges.
  std::vector<size_t> np_labels;
  std::vector<size_t> rp_labels;
  UnionFind np_uf(n_subject_surfaces + n_object_surfaces);
  UnionFind rp_uf(problem.predicate_surfaces.size());
  std::vector<std::tuple<size_t, size_t, double>> same_string_edges;
  {
    std::unordered_map<std::string, size_t> by_string;
    for (size_t s = 0; s < n_subject_surfaces; ++s) {
      by_string.emplace(problem.subject_surfaces[s], s);
    }
    for (size_t o = 0; o < n_object_surfaces; ++o) {
      auto it = by_string.find(problem.object_surfaces[o]);
      if (it != by_string.end()) {
        same_string_edges.emplace_back(it->second, n_subject_surfaces + o,
                                       1.0);
        np_uf.Union(it->second, n_subject_surfaces + o);
      }
    }
  }
  if (options_.builder.enable_canonicalization) {
    std::vector<std::tuple<size_t, size_t, double>> np_edges =
        same_string_edges;
    for (size_t p = 0; p < problem.subject_pairs.size(); ++p) {
      np_edges.emplace_back(problem.subject_pairs[p].a,
                            problem.subject_pairs[p].b,
                            engine.Marginal(jgraph.x_vars[p])[1]);
    }
    for (size_t p = 0; p < problem.object_pairs.size(); ++p) {
      np_edges.emplace_back(n_subject_surfaces + problem.object_pairs[p].a,
                            n_subject_surfaces + problem.object_pairs[p].b,
                            engine.Marginal(jgraph.z_vars[p])[1]);
    }
    np_labels = ClusterPairGraph(n_subject_surfaces + n_object_surfaces,
                                 np_edges, 0.5);
    std::vector<std::tuple<size_t, size_t, double>> rp_edges;
    for (size_t p = 0; p < problem.predicate_pairs.size(); ++p) {
      rp_edges.emplace_back(problem.predicate_pairs[p].a,
                            problem.predicate_pairs[p].b,
                            engine.Marginal(jgraph.y_vars[p])[1]);
    }
    rp_labels = ClusterPairGraph(problem.predicate_surfaces.size(), rp_edges,
                                 0.5);
  } else if (options_.builder.enable_linking) {
    // JOCLlink fallback: group by linked entity/relation so the result is
    // still a complete joint output.
    std::unordered_map<int64_t, size_t> first_subject;
    for (size_t t = 0; t < n; ++t) {
      int64_t e = result.np_link[t * 2];
      if (e == kNilId) continue;
      auto [it, inserted] = first_subject.emplace(e, problem.subject_of[t]);
      if (!inserted) np_uf.Union(it->second, problem.subject_of[t]);
    }
    for (size_t t = 0; t < n; ++t) {
      int64_t e = result.np_link[t * 2 + 1];
      if (e == kNilId) continue;
      auto [it, inserted] =
          first_subject.emplace(e, n_subject_surfaces + problem.object_of[t]);
      if (!inserted) {
        np_uf.Union(it->second, n_subject_surfaces + problem.object_of[t]);
      }
    }
    std::unordered_map<int64_t, size_t> first_predicate;
    for (size_t t = 0; t < n; ++t) {
      int64_t r = result.rp_link[t];
      if (r == kNilId) continue;
      auto [it, inserted] = first_predicate.emplace(r, problem.predicate_of[t]);
      if (!inserted) rp_uf.Union(it->second, problem.predicate_of[t]);
    }
  }

  // ---- conflict resolution (paper §3.5) ----------------------------------------
  if (options_.builder.enable_canonicalization &&
      options_.builder.enable_linking) {
    // Per-mention confidence of the decoded link: resolution must not
    // overturn links the model itself is sure about.
    std::vector<double> np_link_confidence(n * 2, 1.0);
    for (size_t t = 0; t < n; ++t) {
      np_link_confidence[t * 2] =
          engine.Marginal(jgraph.es_vars[t])[decoded[jgraph.es_vars[t]]];
      np_link_confidence[t * 2 + 1] =
          engine.Marginal(jgraph.eo_vars[t])[decoded[jgraph.eo_vars[t]]];
    }
    constexpr double kOverturnable = 0.85;
    // Link-group sizes: mentions per linked entity.
    std::unordered_map<int64_t, size_t> entity_counts;
    for (int64_t e : result.np_link) {
      if (e != kNilId) ++entity_counts[e];
    }
    auto resolve = [&](const std::vector<SurfacePair>& pairs,
                       const std::vector<VariableId>& vars,
                       const std::vector<size_t>& representative,
                       bool subject_role) {
      for (size_t p = 0; p < pairs.size(); ++p) {
        if (decoded[vars[p]] != 1) continue;
        if (engine.Marginal(vars[p])[1] < options_.conflict_confidence) {
          continue;
        }
        size_t mention_a = representative[pairs[p].a] * 2 +
                           (subject_role ? 0 : 1);
        size_t mention_b = representative[pairs[p].b] * 2 +
                           (subject_role ? 0 : 1);
        int64_t e_a = result.np_link[mention_a];
        int64_t e_b = result.np_link[mention_b];
        if (e_a == kNilId || e_b == kNilId || e_a == e_b) continue;
        int64_t winner =
            entity_counts[e_a] >= entity_counts[e_b] ? e_a : e_b;
        int64_t loser = winner == e_a ? e_b : e_a;
        // Both NPs take the label of the larger link group: mentions of
        // the two surfaces that sit in the losing group move over.
        size_t surf_a = pairs[p].a;
        size_t surf_b = pairs[p].b;
        for (size_t t = 0; t < n; ++t) {
          size_t surf_of_t =
              subject_role ? problem.subject_of[t] : problem.object_of[t];
          size_t mention = t * 2 + (subject_role ? 0 : 1);
          if ((surf_of_t == surf_a || surf_of_t == surf_b) &&
              result.np_link[mention] == loser &&
              np_link_confidence[mention] < kOverturnable) {
            result.np_link[mention] = winner;
          }
        }
      }
    };
    resolve(problem.subject_pairs, jgraph.x_vars, problem.subject_rep, true);
    resolve(problem.object_pairs, jgraph.z_vars, problem.object_rep, false);

    std::unordered_map<int64_t, size_t> relation_counts;
    for (int64_t r : result.rp_link) {
      if (r != kNilId) ++relation_counts[r];
    }
    for (size_t p = 0; p < problem.predicate_pairs.size(); ++p) {
      if (decoded[jgraph.y_vars[p]] != 1) continue;
      if (engine.Marginal(jgraph.y_vars[p])[1] <
          options_.conflict_confidence) {
        continue;
      }
      size_t rep_a = problem.predicate_rep[problem.predicate_pairs[p].a];
      size_t rep_b = problem.predicate_rep[problem.predicate_pairs[p].b];
      int64_t r_a = result.rp_link[rep_a];
      int64_t r_b = result.rp_link[rep_b];
      if (r_a == kNilId || r_b == kNilId || r_a == r_b) continue;
      int64_t winner =
          relation_counts[r_a] >= relation_counts[r_b] ? r_a : r_b;
      int64_t loser = winner == r_a ? r_b : r_a;
      size_t surf_a = problem.predicate_pairs[p].a;
      size_t surf_b = problem.predicate_pairs[p].b;
      for (size_t t = 0; t < n; ++t) {
        if ((problem.predicate_of[t] == surf_a ||
             problem.predicate_of[t] == surf_b) &&
            result.rp_link[t] == loser) {
          result.rp_link[t] = winner;
        }
      }
    }
  }

  // ---- materialize mention cluster labels ---------------------------------------
  if (np_labels.empty()) np_labels = np_uf.Labels();
  if (rp_labels.empty()) rp_labels = rp_uf.Labels();
  result.np_cluster.resize(n * 2);
  result.rp_cluster.resize(n);
  for (size_t t = 0; t < n; ++t) {
    result.np_cluster[t * 2] = np_labels[problem.subject_of[t]];
    result.np_cluster[t * 2 + 1] =
        np_labels[n_subject_surfaces + problem.object_of[t]];
    result.rp_cluster[t] = rp_labels[problem.predicate_of[t]];
  }
  return result;
}

Result<JoclResult> Jocl::Run(const Dataset& dataset,
                             const SignalBundle& signals,
                             const std::vector<size_t>& triple_subset) const {
  Result<std::vector<double>> weights = LearnWeights(dataset, signals);
  if (!weights.ok()) return weights.status();
  return Infer(dataset, signals, triple_subset, weights.MoveValueOrDie());
}

}  // namespace jocl
