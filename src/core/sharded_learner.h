#ifndef JOCL_CORE_SHARDED_LEARNER_H_
#define JOCL_CORE_SHARDED_LEARNER_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "core/jocl.h"
#include "graph/learner.h"

namespace jocl {

/// \brief Execution knobs of the sharded learner (orthogonal to the model
/// configuration in JoclOptions; no setting changes the result).
struct LearnRuntimeOptions {
  /// Worker threads running expectation passes: 1 = sequential, 0 = one
  /// per hardware thread, n = n workers.
  size_t num_threads = 0;
  /// Work-bin count: components are packed into this many scheduling bins
  /// (descending size onto the lightest bin, deterministically); a bin is
  /// the unit a worker dequeues. 0 = one bin per independent sub-problem,
  /// 1 = everything in one bin (sequential regardless of threads).
  size_t max_shards = 0;
};

/// \brief Stage timings + shape facts of one ShardedLearner::Learn call
/// (consumed by bench_learning_curve and the jocl_learn CLI).
struct LearnerRunStats {
  double problem_seconds = 0.0;    ///< BuildProblem (global)
  double cache_seconds = 0.0;      ///< SignalCache build (global)
  double partition_seconds = 0.0;  ///< union-find sharding + bin packing
  double setup_seconds = 0.0;      ///< per-component graph build + compile
                                   ///< + labeling, wall
  double learn_seconds = 0.0;      ///< gradient-ascent loop, wall
  size_t components = 0;           ///< independent sub-problems
  size_t bins = 0;                 ///< scheduling bins actually used
  size_t labels = 0;               ///< (variable, state) gold labels
  size_t variables = 0;            ///< across all component graphs
  size_t factors = 0;
};

/// \brief Builds the learner's (variable, state) gold labels for a
/// problem from the dataset's gold annotations: pair variables get
/// same-group/different-group states, linking variables the state of
/// their gold candidate (NIL when unreachable). Works unchanged on
/// shard-local problems because their `triples` hold global dataset ids,
/// exactly like the monolithic problem's.
std::vector<std::pair<VariableId, size_t>> BuildGoldLabels(
    const Dataset& dataset, const JoclProblem& problem,
    const JoclGraph& jgraph, const GraphBuilderOptions& builder);

/// \brief Maximum-likelihood weight learning on the sharded runtime
/// machinery (paper §3.4 on the PR 2 execution stack).
///
/// The gradient `dO/dw = E[h | Y^L] − E[h]` decomposes over the factor
/// graph's connected components: both expectations are sums of per-factor
/// terms, every factor is internal to exactly one component
/// (`PartitionProblem`), and clamping a component's labels only
/// conditions that component's distribution. So the learner partitions
/// the labeled problem once, builds and compiles one graph per component
/// through the `SignalCache` path, and runs the clamped and free passes
/// component-parallel on a worker pool — each component accumulating its
/// own feature-expectation vectors.
///
/// **Determinism.** Per-component expectations are a pure function of the
/// component's local problem and the current weights, and the global
/// gradient is reduced from them in ascending component order, one weight
/// at a time, on the main thread. Execution order never feeds the
/// reduction, so the learned weights (and the whole trace) are
/// byte-identical for every `num_threads` / `max_shards` setting — the
/// learning-side counterpart of `JoclRuntime::Infer`'s guarantee (tested
/// in tests/learner_runtime_test.cc).
class ShardedLearner {
 public:
  explicit ShardedLearner(JoclOptions options = {},
                          LearnRuntimeOptions runtime = {});

  /// Learns shared factor weights from the gold labels of
  /// \p labeled_triples (dataset triple indices; the dataset must carry
  /// gold annotations for every enabled factor family). \p initial_weights
  /// empty = Jocl::DefaultWeights(), the uniform prior the L2 term
  /// regularizes toward. \p stats, when non-null, receives stage timings.
  Result<LearnerResult> Learn(const Dataset& dataset,
                              const SignalBundle& signals,
                              const std::vector<size_t>& labeled_triples,
                              std::vector<double> initial_weights = {},
                              LearnerRunStats* stats = nullptr) const;

  const JoclOptions& options() const { return options_; }
  const LearnRuntimeOptions& runtime_options() const { return runtime_; }

 private:
  JoclOptions options_;
  LearnRuntimeOptions runtime_;
};

}  // namespace jocl

#endif  // JOCL_CORE_SHARDED_LEARNER_H_
