#include "core/sharded_learner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "core/graph_builder.h"
#include "core/shard.h"
#include "core/signal_cache.h"
#include "graph/compiled_graph.h"
#include "graph/inference.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/worker_pool.h"

namespace jocl {
namespace {

// Finds the linking-variable state of a gold id in a candidate list:
// state 0 is NIL, state k is candidate k-1.
template <typename Candidate>
size_t GoldState(const std::vector<Candidate>& candidates, int64_t gold) {
  if (gold == kNilId) return 0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c].id == gold) return c + 1;
  }
  return 0;  // gold not reachable -> best achievable label is NIL
}

/// One connected component's learning state, alive for the whole run:
/// graph + compiled form + engine are built once, the expectation vectors
/// are refilled every iteration.
struct ComponentState {
  JoclProblem problem;
  JoclGraph jgraph;
  CompiledGraph compiled;
  std::unique_ptr<InferenceEngine> engine;
  std::vector<std::pair<VariableId, size_t>> labels;
  std::vector<double> clamped_expect;
  std::vector<double> free_expect;
  /// logZ_clamped − logZ_free ≈ this component's log p(Y^L_c).
  double log_likelihood = 0.0;
};

/// Runs both expectation passes of one iteration for one component. The
/// graph ends unclamped; all outputs land in the component's own state,
/// so concurrent calls on different components never share writes.
void RunComponentPasses(ComponentState* state) {
  FactorGraph* graph = &state->jgraph.graph;
  double clamped_log_z = 0.0;
  {
    ScopedSpan span("clamped_pass");
    graph->UnclampAll();
    for (const auto& [variable, label_state] : state->labels) {
      Status st = graph->Clamp(variable, label_state);
      (void)st;  // labels are built from the graph's own variables
    }
    std::fill(state->clamped_expect.begin(), state->clamped_expect.end(),
              0.0);
    state->engine->Run();
    state->engine->AccumulateExpectedFeatures(&state->clamped_expect);
    clamped_log_z = state->engine->LogPartitionEstimate();
  }

  ScopedSpan span("free_pass");
  graph->UnclampAll();
  std::fill(state->free_expect.begin(), state->free_expect.end(), 0.0);
  state->engine->Run();
  state->engine->AccumulateExpectedFeatures(&state->free_expect);
  state->log_likelihood = clamped_log_z - state->engine->LogPartitionEstimate();
}

/// Mirrors a finished learning run's stats onto the process-wide
/// registry.
void MirrorLearnerStats(const LearnerRunStats& stats, size_t iterations) {
  MetricsRegistry& global = MetricsRegistry::Global();
  static Counter* runs = global.AddCounter("jocl_learn_runs_total", "",
                                           "Learning runs completed");
  static Counter* iters = global.AddCounter(
      "jocl_learn_iterations_total", "", "Gradient-ascent iterations");
  static Counter* labels = global.AddCounter(
      "jocl_learn_labels_total", "", "Gold labels clamped per run");
  runs->Add();
  iters->Add(iterations);
  labels->Add(stats.labels);
}

/// Groups component indices into scheduling bins via the partition
/// layer's deterministic packing (PackWeightedItems, core/shard.h).
/// Components inside a bin stay in ascending order — execution order is
/// result-irrelevant, this just keeps memory walks monotone.
std::vector<std::vector<size_t>> PackBins(
    const std::vector<size_t>& component_weight, size_t bins) {
  const std::vector<size_t> bin_of = PackWeightedItems(component_weight, bins);
  const size_t n_bins =
      (bins == 0 || bins >= component_weight.size()) ? component_weight.size()
                                                     : bins;
  std::vector<std::vector<size_t>> packed(n_bins);
  for (size_t c = 0; c < bin_of.size(); ++c) {
    packed[bin_of[c]].push_back(c);
  }
  return packed;
}

}  // namespace

std::vector<std::pair<VariableId, size_t>> BuildGoldLabels(
    const Dataset& dataset, const JoclProblem& problem,
    const JoclGraph& jgraph, const GraphBuilderOptions& builder) {
  std::vector<std::pair<VariableId, size_t>> labels;
  auto label_pairs = [&](const std::vector<SurfacePair>& pairs,
                         const std::vector<VariableId>& vars,
                         const std::vector<size_t>& representative,
                         auto gold_group_of) {
    for (size_t p = 0; p < pairs.size(); ++p) {
      int64_t group_a = gold_group_of(representative[pairs[p].a]);
      int64_t group_b = gold_group_of(representative[pairs[p].b]);
      labels.emplace_back(vars[p], group_a == group_b ? 1 : 0);
    }
  };
  if (builder.enable_canonicalization) {
    label_pairs(problem.subject_pairs, jgraph.x_vars, problem.subject_rep,
                [&](size_t local) {
                  return dataset.gold_np_group[problem.triples[local] * 2];
                });
    label_pairs(problem.predicate_pairs, jgraph.y_vars, problem.predicate_rep,
                [&](size_t local) {
                  return dataset.gold_rp_group[problem.triples[local]];
                });
    label_pairs(problem.object_pairs, jgraph.z_vars, problem.object_rep,
                [&](size_t local) {
                  return dataset.gold_np_group[problem.triples[local] * 2 + 1];
                });
  }
  if (builder.enable_linking) {
    for (size_t t = 0; t < problem.triples.size(); ++t) {
      size_t global = problem.triples[t];
      labels.emplace_back(
          jgraph.es_vars[t],
          GoldState(problem.subject_candidates[problem.subject_of[t]],
                    dataset.gold_subject_entity[global]));
      labels.emplace_back(
          jgraph.rp_vars[t],
          GoldState(problem.predicate_candidates[problem.predicate_of[t]],
                    dataset.gold_relation[global]));
      labels.emplace_back(
          jgraph.eo_vars[t],
          GoldState(problem.object_candidates[problem.object_of[t]],
                    dataset.gold_object_entity[global]));
    }
  }
  return labels;
}

ShardedLearner::ShardedLearner(JoclOptions options, LearnRuntimeOptions runtime)
    : options_(std::move(options)), runtime_(runtime) {}

Result<LearnerResult> ShardedLearner::Learn(
    const Dataset& dataset, const SignalBundle& signals,
    const std::vector<size_t>& labeled_triples,
    std::vector<double> initial_weights, LearnerRunStats* stats) const {
  const size_t w = WeightLayout::kCount;
  if (initial_weights.empty()) initial_weights = Jocl::DefaultWeights();
  if (initial_weights.size() != w) {
    return Status::InvalidArgument(
        "initial weights must have WeightLayout::kCount entries");
  }
  for (size_t t : labeled_triples) {
    if (t >= dataset.okb.size()) {
      return Status::InvalidArgument("labeled triple index " +
                                     std::to_string(t) +
                                     " out of range for the dataset");
    }
  }
  if (options_.builder.enable_canonicalization &&
      (dataset.gold_np_group.size() < dataset.okb.size() * 2 ||
       dataset.gold_rp_group.size() < dataset.okb.size())) {
    return Status::InvalidArgument(
        "dataset lacks gold canonicalization groups for learning");
  }
  if (options_.builder.enable_linking &&
      (dataset.gold_subject_entity.size() < dataset.okb.size() ||
       dataset.gold_relation.size() < dataset.okb.size() ||
       dataset.gold_object_entity.size() < dataset.okb.size())) {
    return Status::InvalidArgument(
        "dataset lacks gold links for learning");
  }

  LearnerRunStats local_stats;
  Stopwatch watch;
  ScopedSpan learn_span("learn");

  // ---- global stages: problem, signal cache, partition --------------------
  JoclProblem problem =
      BuildProblem(dataset, signals, labeled_triples, options_.problem);
  local_stats.problem_seconds = watch.ElapsedSeconds();

  watch.Reset();
  SignalCache cache = SignalCache::ForProblem(problem, signals, dataset.ckb);
  local_stats.cache_seconds = watch.ElapsedSeconds();

  // One shard per connected component, always: the component is the
  // reduction unit (see the class comment), so graph granularity must not
  // depend on the max_shards knob — that knob only packs components into
  // scheduling bins below.
  watch.Reset();
  ShardPlan plan = PartitionProblem(problem, /*max_shards=*/0);
  const size_t n_components = plan.shards.size();
  std::vector<size_t> component_weight(n_components);
  for (size_t c = 0; c < n_components; ++c) {
    component_weight[c] = plan.shards[c].triple_map.size();
  }
  std::vector<std::vector<size_t>> bins =
      PackBins(component_weight, runtime_.max_shards);
  local_stats.partition_seconds = watch.ElapsedSeconds();
  local_stats.components = n_components;
  local_stats.bins = bins.size();

  LearnerResult result;
  result.weights = std::move(initial_weights);
  const std::vector<double> anchor = result.weights;  // regularization center
  if (n_components == 0) {
    result.converged = true;  // an empty gradient is below any tolerance
    if (stats != nullptr) *stats = local_stats;
    return result;
  }

  const size_t requested_threads =
      runtime_.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : runtime_.num_threads;

  // ---- per-component setup: build + compile once, label ------------------
  // `result.weights` is the one weight vector every engine binds; it is
  // only written between iterations, after all workers joined.
  watch.Reset();
  std::optional<ScopedSpan> span;
  span.emplace("setup");
  std::vector<std::unique_ptr<ComponentState>> components(n_components);
  RunOnPool(
      n_components, requested_threads,
      [&](size_t c) { return component_weight[c]; },
      [&](size_t c) {
        auto state = std::make_unique<ComponentState>();
        state->problem = std::move(plan.shards[c].problem);
        state->jgraph = BuildJoclGraph(state->problem, cache, dataset.ckb,
                                       options_.builder);
        state->compiled = CompiledGraph::Compile(state->jgraph.graph);
        LbpOptions lbp_options = options_.learner.lbp;
        lbp_options.factor_schedule = state->jgraph.schedule;
        lbp_options.num_threads = 1;  // parallelism lives across components
        state->engine =
            CreateInferenceEngine(options_.learner.backend, &state->compiled,
                                  &result.weights, lbp_options);
        state->labels = BuildGoldLabels(dataset, state->problem,
                                        state->jgraph, options_.builder);
        state->clamped_expect.resize(w, 0.0);
        state->free_expect.resize(w, 0.0);
        components[c] = std::move(state);
      });
  for (const auto& state : components) {
    local_stats.labels += state->labels.size();
    local_stats.variables += state->jgraph.graph.variable_count();
    local_stats.factors += state->jgraph.graph.factor_count();
  }
  span.reset();
  local_stats.setup_seconds = watch.ElapsedSeconds();

  // ---- gradient ascent ----------------------------------------------------
  watch.Reset();
  std::vector<double> gradient(w);
  Stopwatch iteration_watch;
  for (size_t iter = 0; iter < options_.learner.iterations; ++iter) {
    iteration_watch.Reset();
    ScopedSpan iteration_span("iteration");
    // Expectation passes, bin-parallel. Every write is component-local.
    RunOnPool(
        bins.size(), requested_threads,
        [&](size_t b) {
          size_t total = 0;
          for (size_t c : bins[b]) {
            total += component_weight[c];
          }
          return total;
        },
        [&](size_t b) {
          for (size_t c : bins[b]) {
            // Track by component index — deterministic across thread
            // counts and bin packings (the clamped/free spans inside
            // nest under this one).
            TraceTrackScope track("learner/", c);
            ScopedSpan span("component_passes");
            RunComponentPasses(components[c].get());
          }
        });

    // Deterministic reduction: ascending component order per weight, on
    // this thread — execution order above cannot leak into the result.
    double log_likelihood = 0.0;
    for (size_t c = 0; c < n_components; ++c) {
      log_likelihood += components[c]->log_likelihood;
    }
    for (size_t k = 0; k < w; ++k) {
      double sum = 0.0;
      for (size_t c = 0; c < n_components; ++c) {
        sum += components[c]->clamped_expect[k] -
               components[c]->free_expect[k];
      }
      gradient[k] = sum;
    }

    LearnerTrace trace =
        ApplyAscentStep(options_.learner, iter, gradient, log_likelihood,
                        anchor, &result.weights);
    trace.seconds = iteration_watch.ElapsedSeconds();
    result.trace.push_back(trace);
    JOCL_LOG(kDebug) << "sharded learner iter " << iter << " objective "
                     << trace.objective << " grad max-norm "
                     << trace.gradient_max_norm;
    if (trace.gradient_max_norm < options_.learner.gradient_tolerance) {
      result.converged = true;
      break;
    }
  }
  local_stats.learn_seconds = watch.ElapsedSeconds();

  JOCL_LOG(kDebug) << "sharded learner: " << n_components << " components in "
                   << bins.size() << " bins over " << requested_threads
                   << " threads, " << local_stats.labels << " labels";
  MirrorLearnerStats(local_stats, result.trace.size());
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace jocl
