#ifndef JOCL_CORE_SIGNAL_CACHE_H_
#define JOCL_CORE_SIGNAL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/problem.h"
#include "core/signals.h"
#include "kb/curated_kb.h"

namespace jocl {

/// \brief Which memo families a cache build materializes. Queries against
/// a family that was not built fall back to the (uncached) bundle, so
/// disabling a family is always safe — callers that only ever query a
/// subset (the baselines) skip the dead per-phrase work.
struct SignalCacheFamilies {
  bool embeddings = true;
  bool triple_embeddings = false;
  bool ppdb = true;
  bool amie = true;
  bool kbp = true;
};

/// \brief Per-surface memoization of every pairwise signal of §3.1–3.2,
/// built once per problem from its distinct surfaces.
///
/// `SignalBundle` answers signal queries from raw phrases: `Emb` tokenizes
/// both phrases, averages word vectors into freshly allocated phrase
/// vectors and takes a cosine — per pair, per linking candidate, per
/// relation alias, and again for the learner's second graph build. The
/// cache front-loads all per-phrase work at registration time:
///
///  * **Embeddings** live in a flat arena of unit-normalized phrase
///    vectors, so `Emb` collapses to one dot product (cosine of unit
///    vectors), with no tokenization and no allocation.
///  * **PPDB** cluster representatives are interned to small integer ids;
///    `Ppdb` is an integer compare.
///  * **AMIE** morphological normalization and evidence checks happen once
///    per phrase; the pair query hits the miner's rule set directly with
///    pre-normalized forms.
///  * **KBP** classifications are memoized; `Kbp` is an id compare.
///
/// Queries fall back to the bundle for phrases that were never registered,
/// so the cache is a drop-in provider wherever a `SignalBundle` is used.
/// Semantics match `SignalBundle` exactly (same neutral-0.5 absence
/// handling); `Emb` values may differ from the uncached path by float
/// rounding only (unit-normalize-then-dot vs cosine of raw sums).
class SignalCache {
 public:
  static constexpr size_t kUnknown = static_cast<size_t>(-1);

  SignalCache() = default;
  // index_ keys string_views into phrases_; moves keep deque element
  // addresses stable, copies would not — and nothing needs them.
  SignalCache(const SignalCache&) = delete;
  SignalCache& operator=(const SignalCache&) = delete;
  SignalCache(SignalCache&&) = default;
  SignalCache& operator=(SignalCache&&) = default;

  /// Builds the cache for a problem: registers every distinct surface of
  /// all three roles plus every CKB candidate entity name, relation name
  /// and relation alias the graph builder will query against them.
  static SignalCache ForProblem(const JoclProblem& problem,
                                const SignalBundle& signals,
                                const CuratedKb& ckb);

  /// Builds the cache over an explicit phrase list (the baselines' surface
  /// views). Distinct phrases receive sequential ids 0..n-1 in input
  /// order, so callers can address the cache by position. \p families
  /// selects which memos to materialize.
  static SignalCache ForPhrases(const std::vector<std::string>& phrases,
                                const SignalBundle& signals,
                                const SignalCacheFamilies& families = {});

  /// Registers a phrase and returns its id (idempotent). Must be followed
  /// by Finalize() before any signal query.
  size_t Add(std::string_view phrase);

  /// Registers everything a graph build over \p problem will query: every
  /// distinct surface of all three roles plus every candidate entity name,
  /// relation name and relation alias. Idempotent — `JoclSession` calls it
  /// per ingestion batch on a long-lived cache.
  void RegisterProblem(const JoclProblem& problem, const CuratedKb& ckb);

  /// Computes the selected per-phrase memos. **Append-only**: repeated
  /// calls only process phrases registered since the previous Finalize —
  /// existing arenas and interned ids are extended, never rebuilt — so a
  /// streaming session pays per batch only for its new surfaces. Query
  /// answers are identical to a fresh build over the same phrase set
  /// (memos are per-phrase and intern ids are only ever compared for
  /// equality). Changing \p families after the first call triggers one
  /// full rebuild.
  void Finalize(const SignalBundle& signals,
                const SignalCacheFamilies& families = {});

  /// Number of phrases covered by the last Finalize().
  size_t finalized_size() const { return finalized_; }

  /// Id of a registered phrase, or kUnknown.
  size_t IdOf(std::string_view phrase) const {
    auto it = index_.find(phrase);
    return it == index_.end() ? kUnknown : it->second;
  }

  size_t size() const { return phrases_.size(); }
  const SignalBundle& bundle() const { return *bundle_; }

  // --- id-based pair signals (both ids must be valid) ---------------------
  // Queries against a family that was not built fall back to the bundle.

  /// `Sim_emb` as a dot product of unit phrase vectors, clamped to [0, 1];
  /// 0.5 when either phrase has no known token.
  double Emb(size_t a, size_t b) const {
    if (!families_.embeddings) return bundle_->Emb(phrases_[a], phrases_[b]);
    if (!has_vec_[a] || !has_vec_[b]) return 0.5;
    return Dot(unit_.data() + a * dim_, unit_.data() + b * dim_, dim_);
  }
  /// `Sim_emb` over the triple-only vectors.
  double TripleEmb(size_t a, size_t b) const {
    if (!families_.triple_embeddings) {
      return bundle_->TripleEmb(phrases_[a], phrases_[b]);
    }
    if (!has_triple_vec_[a] || !has_triple_vec_[b]) return 0.5;
    return Dot(triple_unit_.data() + a * triple_dim_,
               triple_unit_.data() + b * triple_dim_, triple_dim_);
  }
  /// `Sim_PPDB` with absence-is-neutral semantics.
  double Ppdb(size_t a, size_t b) const {
    if (!families_.ppdb) return bundle_->Ppdb(phrases_[a], phrases_[b]);
    if (ppdb_rep_[a] < 0 || ppdb_rep_[b] < 0) return 0.5;
    return ppdb_rep_[a] == ppdb_rep_[b] ? 1.0 : 0.0;
  }
  /// `Sim_AMIE` with absence-is-neutral semantics.
  double Amie(size_t a, size_t b) const;
  /// `Sim_KBP` with absence-is-neutral semantics.
  double Kbp(size_t a, size_t b) const {
    if (!families_.kbp) return bundle_->Kbp(phrases_[a], phrases_[b]);
    if (kbp_class_[a] == kNilId || kbp_class_[b] == kNilId) return 0.5;
    return kbp_class_[a] == kbp_class_[b] ? 1.0 : 0.0;
  }

  // --- drop-in SignalBundle-shaped interface ------------------------------
  // Unregistered phrases fall back to the (uncached) bundle.

  double Emb(std::string_view a, std::string_view b) const;
  double TripleEmb(std::string_view a, std::string_view b) const;
  double Ppdb(std::string_view a, std::string_view b) const;
  double Amie(std::string_view a, std::string_view b) const;
  double Kbp(std::string_view a, std::string_view b) const;
  static double Ngram(std::string_view a, std::string_view b) {
    return SignalBundle::Ngram(a, b);
  }
  static double Ld(std::string_view a, std::string_view b) {
    return SignalBundle::Ld(a, b);
  }

 private:
  static double Dot(const float* a, const float* b, size_t dim) {
    double dot = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      dot += static_cast<double>(a[d]) * b[d];
    }
    if (dot < 0.0) return 0.0;
    return dot > 1.0 ? 1.0 : dot;
  }
  static uint64_t PairKey(int32_t a, int32_t b) {
    uint32_t lo = static_cast<uint32_t>(a < b ? a : b);
    uint32_t hi = static_cast<uint32_t>(a < b ? b : a);
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }
  // Extends \p unit / \p has with unit-normalized phrase vectors for
  // phrases [\p from, size()) of \p table.
  void BuildArena(const EmbeddingTable& table, size_t from,
                  std::vector<float>* unit, std::vector<uint8_t>* has,
                  size_t* dim) const;

  const SignalBundle* bundle_ = nullptr;
  SignalCacheFamilies families_;
  /// Phrases covered by the last Finalize(); the next call starts here.
  size_t finalized_ = 0;

  /// Owns phrase storage; index_ keys string_views into it (stable deque
  /// addresses), so IdOf never allocates.
  std::deque<std::string> phrases_;
  std::unordered_map<std::string_view, size_t> index_;

  // Embedding arenas: one unit-normalized row per phrase.
  size_t dim_ = 0;
  std::vector<float> unit_;
  std::vector<uint8_t> has_vec_;
  size_t triple_dim_ = 0;
  std::vector<float> triple_unit_;
  std::vector<uint8_t> has_triple_vec_;

  // PPDB representative ids (-1 = outside PPDB's coverage). The intern
  // map persists so append-only finalizes assign consistent ids.
  std::vector<int32_t> ppdb_rep_;
  std::unordered_map<std::string, int32_t> ppdb_rep_ids_;

  // AMIE: interned normalized-form id and evidence flag per phrase, plus
  // the miner's bidirectional equivalences as unordered norm-id pairs —
  // the pair query is two int compares and at most one integer hash.
  // The norm-id intern map persists across finalizes; the equivalence set
  // is re-derived from the miner's (static) rule set whenever new norm
  // ids appear.
  std::vector<int32_t> amie_norm_id_;
  std::vector<uint8_t> amie_evidence_;
  std::unordered_set<uint64_t> amie_equivalent_;
  std::unordered_map<std::string, int32_t> amie_norm_ids_;

  // KBP classification per phrase (kNilId = abstain).
  std::vector<RelationId> kbp_class_;
};

}  // namespace jocl

#endif  // JOCL_CORE_SIGNAL_CACHE_H_
