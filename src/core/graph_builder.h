#ifndef JOCL_CORE_GRAPH_BUILDER_H_
#define JOCL_CORE_GRAPH_BUILDER_H_

#include <cstddef>
#include <vector>

#include "core/feature_config.h"
#include "core/problem.h"
#include "graph/factor_graph.h"

namespace jocl {

/// \brief Structural switches of the JOCL graph (the paper's ablations).
struct GraphBuilderOptions {
  /// Emit canonicalization variables + F1/F2/F3 (+U1..U3).
  bool enable_canonicalization = true;
  /// Emit linking variables + F4/F5/F6 (+U4).
  bool enable_linking = true;
  /// Emit U1..U3 transitive-relation factors.
  bool enable_transitive = true;
  /// Emit the U4 fact-inclusion factor.
  bool enable_fact_inclusion = true;
  /// Emit U5..U7 consistency factors (Table 4 removes these).
  bool enable_consistency = true;
  /// Attach consistency factors to candidate-blocked pairs too. Those
  /// pairs exist because the surfaces share a candidate, so a full-swing
  /// consistency factor would reward that agreement circularly; with the
  /// agreement evidence also flowing through f_cand, these factors get a
  /// dampened swing (see consistency_candidate_damping).
  bool consistency_on_candidate_pairs = true;
  /// Swing multiplier for consistency factors on candidate-blocked pairs:
  /// scores are pulled toward neutral by this factor (0 = fully neutral,
  /// 1 = the paper's full 0.7/0.3 swing).
  double consistency_candidate_damping = 0.5;
  /// Which feature functions feed F1..F6 (Table 5 variants).
  FeatureMask features = FeatureMask::All();

  /// IDF similarities below this feed F1/F2/F3 as a neutral 0.5 instead of
  /// their raw value. The paper's pair variables all sit at IDF >= 0.5, so
  /// its f_idf never argues *against* a merge; our side-info-blocked pairs
  /// (acronyms, nicknames) would otherwise be vetoed by the one signal
  /// that is structurally blind to them. Safe only because predicate
  /// blocking excludes self-confirming buckets (see BuildProblem).
  double idf_neutral_below = 0.5;

  /// Heuristic factor scores (paper §3.1.5, §3.2.5, §3.3).
  double transitive_high = 0.9;
  double transitive_mid = 0.5;
  double transitive_low = 0.1;
  double fact_high = 0.9;
  double fact_low = 0.1;
  double consistency_high = 0.7;
  double consistency_low = 0.3;
  /// Score when both linking variables of a consistency factor are NIL:
  /// neither evidence for nor against co-reference.
  double consistency_neutral = 0.5;

  /// Feature value assigned to the NIL state of entity linking variables
  /// (acts as the prior the candidates must beat).
  double nil_score = 0.35;
  /// NIL prior for relation linking variables. Lower than the entity one:
  /// relation candidate scores are surface similarities that rarely exceed
  /// ~0.5 even for correct readings, so an equal prior would over-predict
  /// NIL.
  double relation_nil_score = 0.22;

  /// Cap on transitive factors per role (triangles are selected
  /// deterministically by pair order).
  size_t max_transitive_per_role = 60000;
};

/// \brief The built factor graph plus the variable bookkeeping needed for
/// labeling (learning) and decoding (inference).
struct JoclGraph {
  FactorGraph graph;

  /// Pair variables per role, aligned with the problem's pair vectors;
  /// kInvalidVar when canonicalization is disabled.
  std::vector<VariableId> x_vars;  // subject pairs
  std::vector<VariableId> y_vars;  // predicate pairs
  std::vector<VariableId> z_vars;  // object pairs

  /// Linking variables per local triple; kInvalidVar when disabled.
  /// State 0 is NIL; state k>0 is the (k-1)-th candidate of the mention's
  /// surface.
  std::vector<VariableId> es_vars;
  std::vector<VariableId> rp_vars;
  std::vector<VariableId> eo_vars;

  /// The paper's message schedule: {F1,F2,F3}, {U1,U2,U3}, {F4,F5,F6},
  /// {U4}, {U5,U6,U7} — groups that are empty (ablated) are dropped.
  std::vector<std::vector<FactorId>> schedule;

  static constexpr VariableId kInvalidVar = static_cast<VariableId>(-1);
};

class SignalCache;

/// \brief Materializes the JOCL factor graph for a problem, computing
/// every signal from scratch (tokenization + phrase vectors per query).
JoclGraph BuildJoclGraph(const JoclProblem& problem,
                         const SignalBundle& signals, const CuratedKb& ckb,
                         const GraphBuilderOptions& options = {});

/// \brief Same graph, but signal queries hit the per-surface memoized
/// cache (unit-vector dot products, interned PPDB/AMIE/KBP lookups) — the
/// runtime's hot path. Identical structure; feature values differ from the
/// uncached overload by float rounding of `Sim_emb` only.
JoclGraph BuildJoclGraph(const JoclProblem& problem,
                         const SignalCache& signals, const CuratedKb& ckb,
                         const GraphBuilderOptions& options = {});

}  // namespace jocl

#endif  // JOCL_CORE_GRAPH_BUILDER_H_
