#ifndef JOCL_CORE_WEIGHTS_IO_H_
#define JOCL_CORE_WEIGHTS_IO_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace jocl {

/// \brief Saves a learned weight vector as `name\tvalue` TSV rows using
/// the WeightLayout names (alpha1.idf, beta5.cons_s, ...). Weights are the
/// unit of transfer in the paper's protocol (learn on the ReVerb45K
/// validation split, apply everywhere), so they deserve a stable on-disk
/// form.
Status SaveWeights(const std::vector<double>& weights,
                   const std::string& path);

/// \brief Loads weights saved by SaveWeights. Entries are matched by
/// name, so the file survives reordering; missing entries default to 1.0
/// (the uniform prior) and unknown names are an error.
Result<std::vector<double>> LoadWeights(const std::string& path);

/// \brief Renders the weights as a human-readable report (one line per
/// weight, sorted by |value - 1| so the most-adjusted signals lead).
std::string FormatWeightReport(const std::vector<double>& weights);

}  // namespace jocl

#endif  // JOCL_CORE_WEIGHTS_IO_H_
