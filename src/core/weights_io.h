#ifndef JOCL_CORE_WEIGHTS_IO_H_
#define JOCL_CORE_WEIGHTS_IO_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace jocl {

/// \brief Saves a learned weight vector as `name\tvalue` TSV rows using
/// the WeightLayout names (alpha1.idf, beta5.cons_s, ...). Weights are the
/// unit of transfer in the paper's protocol (learn on the ReVerb45K
/// validation split, apply everywhere), so they deserve a stable on-disk
/// form. The first line is a header naming every feature column in layout
/// order (`# jocl-weights\talpha1.idf\t...`), which pins the file to the
/// feature set that wrote it.
Status SaveWeights(const std::vector<double>& weights,
                   const std::string& path);

/// \brief Loads weights saved by SaveWeights. Entries are matched by
/// name, so the file survives row reordering; unknown names are an error.
/// A header line, when present, must name exactly this build's feature
/// columns in layout order and every named weight must appear — a file
/// written by a reordered or extended feature set fails with a
/// descriptive Status instead of silently misassigning weights. Legacy
/// headerless files keep the lenient behavior: missing entries default to
/// 1.0 (the uniform prior).
Result<std::vector<double>> LoadWeights(const std::string& path);

/// \brief Renders the weights as a human-readable report (one line per
/// weight, sorted by |value - 1| so the most-adjusted signals lead).
std::string FormatWeightReport(const std::vector<double>& weights);

}  // namespace jocl

#endif  // JOCL_CORE_WEIGHTS_IO_H_
