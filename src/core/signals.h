#ifndef JOCL_CORE_SIGNALS_H_
#define JOCL_CORE_SIGNALS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "embedding/embedding_table.h"
#include "sideinfo/amie_miner.h"
#include "sideinfo/kbp_mapper.h"
#include "text/similarity.h"
#include "util/result.h"

namespace jocl {

/// \brief Options controlling signal construction.
struct SignalOptions {
  /// Word2vec hyper-parameters for the embedding signal.
  size_t embedding_dim = 48;
  size_t embedding_epochs = 5;
  /// AMIE thresholds (paper-style support/confidence mining).
  size_t amie_min_support = 2;
  double amie_min_confidence = 0.5;
  uint64_t seed = 42;
};

/// \brief Everything the signal feature functions of §3.1–3.2 need,
/// precomputed once per data set and shared by JOCL and the baselines.
///
/// No gold test labels flow in here: embeddings and AMIE are unsupervised
/// over the raw triples, PPDB comes from the (noisy) resource shipped with
/// the data set, and KBP is trained on the validation split only.
class SignalBundle {
 public:
  /// IDF statistics over all NPs in the OKB (for Sim_idf on NPs).
  IdfTable np_idf;
  /// IDF statistics over all RPs.
  IdfTable rp_idf;
  /// Word embeddings trained on triples + synthetic source sentences
  /// (stands in for the paper's fastText Common-Crawl vectors).
  EmbeddingTable embeddings{0};
  /// Word embeddings trained on the OKB triples ONLY — what a system
  /// without access to the source text (CESI) can learn.
  EmbeddingTable triple_embeddings{0};
  /// PPDB-style paraphrase clusters (borrowed from the data set).
  const ParaphraseStore* ppdb = nullptr;
  /// Mined Horn rules between RPs.
  AmieMiner amie;
  /// KBP-style RP -> relation mapper (validation-trained).
  KbpMapper kbp;

  // --- the paper's similarity signals -------------------------------------

  /// `Sim_idf` between two NPs (or RPs via rp variant).
  double NpIdf(std::string_view a, std::string_view b) const {
    return np_idf.Similarity(a, b);
  }
  double RpIdf(std::string_view a, std::string_view b) const {
    return rp_idf.Similarity(a, b);
  }
  /// `Sim_emb`: cosine of averaged word vectors, clamped to [0, 1].
  double Emb(std::string_view a, std::string_view b) const {
    return embeddings.PhraseSimilarity(a, b);
  }
  /// `Sim_emb` over the triple-only vectors (used by the CESI baseline).
  double TripleEmb(std::string_view a, std::string_view b) const {
    return triple_embeddings.PhraseSimilarity(a, b);
  }
  /// `Sim_PPDB` with absence-is-neutral semantics: 1 when both phrases
  /// share a cluster representative, 0 when BOTH are known to PPDB but
  /// disagree, 0.5 when either phrase is outside PPDB's partial coverage
  /// (no evidence is not evidence of difference).
  double Ppdb(std::string_view a, std::string_view b) const {
    if (ppdb == nullptr) return 0.5;
    auto rep_a = ppdb->Representative(a);
    if (!rep_a.has_value()) return 0.5;
    auto rep_b = ppdb->Representative(b);
    if (!rep_b.has_value()) return 0.5;
    return *rep_a == *rep_b ? 1.0 : 0.0;
  }
  /// `Sim_AMIE` with absence-is-neutral semantics: 0.5 unless both RPs had
  /// enough argument-pair support for rule mining to say anything.
  double Amie(std::string_view a, std::string_view b) const {
    if (amie.Similarity(a, b) > 0.5) return 1.0;  // rule or same norm form
    if (!amie.HasEvidence(a) || !amie.HasEvidence(b)) return 0.5;
    return 0.0;
  }
  /// `Sim_KBP` with absence-is-neutral semantics: 0.5 when either RP is
  /// unclassifiable (the mapper abstains), else same-category indicator.
  double Kbp(std::string_view a, std::string_view b) const {
    RelationId ra = kbp.Classify(a);
    if (ra == kNilId) return 0.5;
    RelationId rb = kbp.Classify(b);
    if (rb == kNilId) return 0.5;
    return ra == rb ? 1.0 : 0.0;
  }
  /// `Ngram` / `LD` string similarities (relation linking, §3.2.4).
  static double Ngram(std::string_view a, std::string_view b) {
    return NgramSimilarity(a, b);
  }
  static double Ld(std::string_view a, std::string_view b) {
    return LevenshteinSimilarity(a, b);
  }
};

/// \brief Builds the full bundle for a data set: fits IDF tables, trains
/// word2vec on the triple corpus + aux sentences, mines AMIE rules, trains
/// the KBP mapper on the validation split.
Result<SignalBundle> BuildSignals(const Dataset& dataset,
                                  const SignalOptions& options = {});

}  // namespace jocl

#endif  // JOCL_CORE_SIGNALS_H_
