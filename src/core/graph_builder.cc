#include "core/graph_builder.h"

#include <algorithm>
#include <unordered_map>

#include "core/signal_cache.h"
#include "util/logging.h"

namespace jocl {
namespace {

uint64_t PairKey(size_t a, size_t b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

// Builds the unary canonicalization factor table for one pair variable
// (states: 0 = different meaning, 1 = same meaning). Each enabled signal
// contributes `sim` to state 1 and `1 - sim` to state 0 (paper §3.1.3).
FeatureTable PairFeatureTable(
    const std::vector<std::pair<WeightId, double>>& signals) {
  FeatureTable table(2);
  for (const auto& [weight, sim] : signals) {
    table.Add(0, weight, 1.0 - sim);
    table.Add(1, weight, sim);
  }
  return table;
}

// Triangle score (paper §3.1.5): all-ones satisfies transitivity (high),
// exactly two ones violates it (low), anything else is neutral (mid).
double TransitiveScore(size_t ones, const GraphBuilderOptions& options) {
  if (ones == 3) return options.transitive_high;
  if (ones == 2) return options.transitive_low;
  return options.transitive_mid;
}

// Candidate-agreement signal (the f_cand extension feature): soft overlap
// of two candidate sets — the best min-popularity shared reading. Neutral
// 0.5 when either side has no candidates (absence is not evidence).
double CandidateAgreement(const std::vector<EntityCandidate>& a,
                          const std::vector<EntityCandidate>& b) {
  if (a.empty() || b.empty()) return 0.5;
  double best = 0.0;
  for (const auto& ca : a) {
    for (const auto& cb : b) {
      if (ca.id == cb.id) {
        best = std::max(best, std::min(ca.popularity, cb.popularity));
      }
    }
  }
  return best;
}

// The builder body is shared between the uncached (SignalBundle) and
// cached (SignalCache) providers; both expose the same Emb/Ppdb/Amie/Kbp
// query shape.
template <typename SignalProvider>
JoclGraph BuildJoclGraphImpl(const JoclProblem& problem,
                             const SignalProvider& signals,
                             const CuratedKb& ckb,
                             const GraphBuilderOptions& options) {
  JoclGraph out;
  FactorGraph& graph = out.graph;
  graph.set_weight_count(WeightLayout::kCount);
  const FeatureMask& mask = options.features;
  const size_t n_triples = problem.triples.size();

  std::vector<FactorId> group_f_canon;
  std::vector<FactorId> group_u_trans;
  std::vector<FactorId> group_f_link;
  std::vector<FactorId> group_u_fact;
  std::vector<FactorId> group_u_cons;

  // --- canonicalization variables + F1/F2/F3 -------------------------------
  if (options.enable_canonicalization) {
    auto build_pairs =
        [&](const std::vector<SurfacePair>& pairs,
            const std::vector<std::string>& surfaces, bool is_predicate,
            const std::vector<std::vector<EntityCandidate>>* candidates,
            size_t alpha_base, std::vector<VariableId>* vars) {
          vars->reserve(pairs.size());
          for (const auto& pair : pairs) {
            VariableId v = graph.AddVariable(2);
            vars->push_back(v);
            const std::string& pa = surfaces[pair.a];
            const std::string& pb = surfaces[pair.b];
            std::vector<std::pair<WeightId, double>> feats;
            if (mask.np_idf) {
              double idf = pair.idf >= options.idf_neutral_below ? pair.idf
                                                                 : 0.5;
              feats.emplace_back(alpha_base + 0, idf);
            }
            if (mask.np_emb) {
              feats.emplace_back(alpha_base + 1, signals.Emb(pa, pb));
            }
            if (mask.np_ppdb) {
              feats.emplace_back(alpha_base + 2, signals.Ppdb(pa, pb));
            }
            if (is_predicate) {
              if (mask.rp_amie) {
                feats.emplace_back(alpha_base + 3, signals.Amie(pa, pb));
              }
              if (mask.rp_kbp) {
                feats.emplace_back(alpha_base + 4, signals.Kbp(pa, pb));
              }
            } else if (mask.np_cand && candidates != nullptr) {
              // f_cand: the extension signal replacing circular
              // consistency factors on candidate-blocked pairs — the
              // agreement evidence flows into x without coupling the
              // linking variables.
              feats.emplace_back(
                  alpha_base + 3,
                  CandidateAgreement((*candidates)[pair.a],
                                     (*candidates)[pair.b]));
            }
            FactorId f = graph
                             .AddFactor({v}, PairFeatureTable(feats),
                                        is_predicate ? "F2" : "F1/F3")
                             .ValueOrDie();
            group_f_canon.push_back(f);
          }
        };
    build_pairs(problem.subject_pairs, problem.subject_surfaces,
                /*is_predicate=*/false, &problem.subject_candidates,
                WeightLayout::kAlpha1, &out.x_vars);
    build_pairs(problem.predicate_pairs, problem.predicate_surfaces,
                /*is_predicate=*/true, nullptr, WeightLayout::kAlpha2,
                &out.y_vars);
    build_pairs(problem.object_pairs, problem.object_surfaces,
                /*is_predicate=*/false, &problem.object_candidates,
                WeightLayout::kAlpha3, &out.z_vars);
  }

  // --- transitive relation factors U1/U2/U3 ---------------------------------
  if (options.enable_canonicalization && options.enable_transitive) {
    auto build_triangles = [&](const std::vector<SurfacePair>& pairs,
                               const std::vector<VariableId>& vars,
                               WeightId beta, const char* name) {
      // Adjacency with pair indices for triangle lookup.
      std::unordered_map<uint64_t, size_t> index;
      std::unordered_map<size_t, std::vector<size_t>> adjacency;
      for (size_t p = 0; p < pairs.size(); ++p) {
        index.emplace(PairKey(pairs[p].a, pairs[p].b), p);
        adjacency[pairs[p].a].push_back(pairs[p].b);
      }
      // Triangle table: 8 assignments over (x_ij, x_jk, x_ik); the score
      // depends only on the number of ones.
      std::vector<double> values(8);
      for (size_t a = 0; a < 8; ++a) {
        size_t ones = static_cast<size_t>((a & 1) != 0) +
                      static_cast<size_t>((a & 2) != 0) +
                      static_cast<size_t>((a & 4) != 0);
        values[a] = TransitiveScore(ones, options);
      }
      size_t emitted = 0;
      for (size_t p = 0; p < pairs.size(); ++p) {
        if (emitted >= options.max_transitive_per_role) break;
        size_t i = pairs[p].a;
        size_t j = pairs[p].b;
        auto adj_it = adjacency.find(j);
        if (adj_it == adjacency.end()) continue;
        for (size_t k : adj_it->second) {  // j < k by pair normalization
          auto ik = index.find(PairKey(i, k));
          if (ik == index.end()) continue;
          auto jk = index.find(PairKey(j, k));
          if (jk == index.end()) continue;
          FactorId f =
              graph
                  .AddFactor({vars[p], vars[jk->second], vars[ik->second]},
                             FeatureTable::Uniform(beta, values), name)
                  .ValueOrDie();
          group_u_trans.push_back(f);
          if (++emitted >= options.max_transitive_per_role) break;
        }
      }
    };
    build_triangles(problem.subject_pairs, out.x_vars, WeightLayout::kBeta1,
                    "U1");
    build_triangles(problem.predicate_pairs, out.y_vars, WeightLayout::kBeta2,
                    "U2");
    build_triangles(problem.object_pairs, out.z_vars, WeightLayout::kBeta3,
                    "U3");
  }

  // --- linking variables + F4/F5/F6 ------------------------------------------
  if (options.enable_linking) {
    out.es_vars.assign(n_triples, JoclGraph::kInvalidVar);
    out.rp_vars.assign(n_triples, JoclGraph::kInvalidVar);
    out.eo_vars.assign(n_triples, JoclGraph::kInvalidVar);

    auto entity_factor_table =
        [&](const std::string& surface,
            const std::vector<EntityCandidate>& candidates,
            size_t alpha_base) {
          FeatureTable table(candidates.size() + 1);
          auto add = [&](size_t state, size_t offset, double value) {
            table.Add(state, alpha_base + offset, value);
          };
          if (mask.link_pop) add(0, 0, options.nil_score);
          if (mask.link_emb) add(0, 1, options.nil_score);
          if (mask.link_ppdb) add(0, 2, options.nil_score);
          for (size_t c = 0; c < candidates.size(); ++c) {
            const std::string& name =
                ckb.entity(candidates[c].id).name;
            if (mask.link_pop) add(c + 1, 0, candidates[c].popularity);
            if (mask.link_emb) add(c + 1, 1, signals.Emb(surface, name));
            if (mask.link_ppdb) add(c + 1, 2, signals.Ppdb(surface, name));
          }
          return table;
        };

    auto relation_factor_table =
        [&](const std::string& surface,
            const std::vector<RelationCandidate>& candidates) {
          const size_t base = WeightLayout::kAlpha5;
          FeatureTable table(candidates.size() + 1);
          auto add = [&](size_t state, size_t offset, double value) {
            table.Add(state, base + offset, value);
          };
          if (mask.rel_ngram) add(0, 0, options.relation_nil_score);
          if (mask.rel_ld) add(0, 1, options.relation_nil_score);
          if (mask.rel_emb) add(0, 2, options.relation_nil_score);
          if (mask.rel_ppdb) add(0, 3, options.relation_nil_score);
          for (size_t c = 0; c < candidates.size(); ++c) {
            RelationId rid = candidates[c].id;
            const std::string& name = ckb.relation(rid).name;
            // Best match over the canonical name and every alias.
            double best_ngram = SignalBundle::Ngram(surface, name);
            double best_ld = SignalBundle::Ld(surface, name);
            double best_emb = signals.Emb(surface, name);
            double best_ppdb = signals.Ppdb(surface, name);
            for (const auto& alias : ckb.RelationAliases(rid)) {
              best_ngram =
                  std::max(best_ngram, SignalBundle::Ngram(surface, alias));
              best_ld = std::max(best_ld, SignalBundle::Ld(surface, alias));
              best_emb = std::max(best_emb, signals.Emb(surface, alias));
              best_ppdb = std::max(best_ppdb, signals.Ppdb(surface, alias));
            }
            if (mask.rel_ngram) add(c + 1, 0, best_ngram);
            if (mask.rel_ld) add(c + 1, 1, best_ld);
            if (mask.rel_emb) add(c + 1, 2, best_emb);
            if (mask.rel_ppdb) add(c + 1, 3, best_ppdb);
          }
          return table;
        };

    for (size_t t = 0; t < n_triples; ++t) {
      size_t s_surf = problem.subject_of[t];
      size_t p_surf = problem.predicate_of[t];
      size_t o_surf = problem.object_of[t];

      VariableId es = graph.AddVariable(
          problem.subject_candidates[s_surf].size() + 1);
      VariableId rp = graph.AddVariable(
          problem.predicate_candidates[p_surf].size() + 1);
      VariableId eo = graph.AddVariable(
          problem.object_candidates[o_surf].size() + 1);
      out.es_vars[t] = es;
      out.rp_vars[t] = rp;
      out.eo_vars[t] = eo;

      group_f_link.push_back(
          graph
              .AddFactor({es},
                         entity_factor_table(problem.subject_surfaces[s_surf],
                                             problem.subject_candidates[s_surf],
                                             WeightLayout::kAlpha4),
                         "F4")
              .ValueOrDie());
      group_f_link.push_back(
          graph
              .AddFactor({rp},
                         relation_factor_table(
                             problem.predicate_surfaces[p_surf],
                             problem.predicate_candidates[p_surf]),
                         "F5")
              .ValueOrDie());
      group_f_link.push_back(
          graph
              .AddFactor({eo},
                         entity_factor_table(problem.object_surfaces[o_surf],
                                             problem.object_candidates[o_surf],
                                             WeightLayout::kAlpha6),
                         "F6")
              .ValueOrDie());

      // U4 fact inclusion over (es, rp, eo).
      if (options.enable_fact_inclusion) {
        const auto& s_cands = problem.subject_candidates[s_surf];
        const auto& p_cands = problem.predicate_candidates[p_surf];
        const auto& o_cands = problem.object_candidates[o_surf];
        size_t cs = s_cands.size() + 1;
        size_t cp = p_cands.size() + 1;
        size_t co = o_cands.size() + 1;
        std::vector<double> values(cs * cp * co, options.fact_low);
        for (size_t a = 1; a < cs; ++a) {
          for (size_t b = 1; b < cp; ++b) {
            for (size_t c = 1; c < co; ++c) {
              if (ckb.HasFact(s_cands[a - 1].id, p_cands[b - 1].id,
                              o_cands[c - 1].id)) {
                values[(a * cp + b) * co + c] = options.fact_high;
              }
            }
          }
        }
        group_u_fact.push_back(
            graph
                .AddFactor({es, rp, eo},
                           FeatureTable::Uniform(WeightLayout::kBeta4,
                                                 std::move(values)),
                           "U4")
                .ValueOrDie());
      }
    }
  }

  // --- consistency factors U5/U6/U7 --------------------------------------------
  if (options.enable_canonicalization && options.enable_linking &&
      options.enable_consistency) {
    // Local triple index of each surface's representative mention.
    auto build_consistency =
        [&]<typename Candidate>(
            const std::vector<SurfacePair>& pairs,
            const std::vector<VariableId>& pair_vars,
            const std::vector<size_t>& representative,
            const std::vector<VariableId>& link_vars,
            const std::vector<std::vector<Candidate>>& candidates,
            WeightId beta, const char* name) {
          for (size_t p = 0; p < pairs.size(); ++p) {
            // Candidate-blocked pairs exist *because* they share a
            // candidate; their consistency factors are skipped or
            // dampened to avoid rewarding that agreement circularly.
            double swing = 1.0;
            if (pairs[p].candidate_blocked) {
              if (!options.consistency_on_candidate_pairs) continue;
              swing = options.consistency_candidate_damping;
            }
            size_t rep_a = representative[pairs[p].a];
            size_t rep_b = representative[pairs[p].b];
            VariableId link_a = link_vars[rep_a];
            VariableId link_b = link_vars[rep_b];
            const auto& cands_a = candidates[pairs[p].a];
            const auto& cands_b = candidates[pairs[p].b];
            size_t ca = cands_a.size() + 1;
            size_t cb = cands_b.size() + 1;
            // Scope (link_a, link_b, x); x is the fastest index.
            std::vector<double> values(ca * cb * 2);
            for (size_t a = 0; a < ca; ++a) {
              for (size_t b = 0; b < cb; ++b) {
                int64_t id_a = a == 0 ? kNilId : cands_a[a - 1].id;
                int64_t id_b = b == 0 ? kNilId : cands_b[b - 1].id;
                double same_score;
                double diff_score;
                if (id_a == kNilId && id_b == kNilId) {
                  // Two NILs say nothing about co-reference.
                  same_score = options.consistency_neutral;
                  diff_score = options.consistency_neutral;
                } else if (id_a == id_b) {
                  same_score = options.consistency_high;
                  diff_score = options.consistency_low;
                } else {
                  same_score = options.consistency_low;
                  diff_score = options.consistency_high;
                }
                // Dampen the swing for candidate-blocked pairs.
                double neutral = options.consistency_neutral;
                diff_score = neutral + (diff_score - neutral) * swing;
                same_score = neutral + (same_score - neutral) * swing;
                values[(a * cb + b) * 2 + 0] = diff_score;  // x = 0
                values[(a * cb + b) * 2 + 1] = same_score;  // x = 1
              }
            }
            group_u_cons.push_back(
                graph
                    .AddFactor({link_a, link_b, pair_vars[p]},
                               FeatureTable::Uniform(beta, std::move(values)),
                               name)
                    .ValueOrDie());
          }
        };
    build_consistency(problem.subject_pairs, out.x_vars, problem.subject_rep,
                      out.es_vars, problem.subject_candidates,
                      WeightLayout::kBeta5, "U5");
    build_consistency(problem.predicate_pairs, out.y_vars,
                      problem.predicate_rep, out.rp_vars,
                      problem.predicate_candidates, WeightLayout::kBeta6,
                      "U6");
    build_consistency(problem.object_pairs, out.z_vars, problem.object_rep,
                      out.eo_vars, problem.object_candidates,
                      WeightLayout::kBeta7, "U7");
  }

  // --- schedule (paper §3.4 working procedure) ---------------------------------
  for (auto* group : {&group_f_canon, &group_u_trans, &group_f_link,
                      &group_u_fact, &group_u_cons}) {
    if (!group->empty()) out.schedule.push_back(std::move(*group));
  }

  JOCL_LOG(kDebug) << "graph: " << graph.variable_count() << " variables, "
                   << graph.factor_count() << " factors";
  return out;
}

}  // namespace

JoclGraph BuildJoclGraph(const JoclProblem& problem,
                         const SignalBundle& signals, const CuratedKb& ckb,
                         const GraphBuilderOptions& options) {
  return BuildJoclGraphImpl(problem, signals, ckb, options);
}

JoclGraph BuildJoclGraph(const JoclProblem& problem,
                         const SignalCache& signals, const CuratedKb& ckb,
                         const GraphBuilderOptions& options) {
  return BuildJoclGraphImpl(problem, signals, ckb, options);
}

}  // namespace jocl
