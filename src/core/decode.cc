#include "core/decode.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/union_find.h"
#include "core/jocl.h"

namespace jocl {
namespace {

// Maps a linking-variable state to a CKB id: state 0 is NIL, state k is
// candidate k-1.
template <typename Candidate>
int64_t StateToId(const std::vector<Candidate>& candidates, size_t state) {
  if (state == 0 || state > candidates.size()) return kNilId;
  return candidates[state - 1].id;
}

}  // namespace

std::vector<size_t> ClusterPairGraph(size_t n,
                                     const std::vector<PairEdge>& edges,
                                     double threshold) {
  // Deduplicated edge lookup (max weight wins) + adjacency.
  std::unordered_map<uint64_t, double> weight_of;
  auto key_of = [](size_t a, size_t b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  for (const auto& [a, b, weight] : edges) {
    auto [it, inserted] = weight_of.emplace(key_of(a, b), weight);
    if (!inserted) it->second = std::max(it->second, weight);
  }
  std::vector<std::tuple<double, size_t, size_t>> ordered;
  ordered.reserve(weight_of.size());
  for (const auto& [key, weight] : weight_of) {
    if (weight >= threshold) {
      ordered.emplace_back(weight, static_cast<size_t>(key >> 32),
                           static_cast<size_t>(key & 0xffffffff));
    }
  }
  // The sort's full tie-break makes the order deterministic even though
  // the map iteration above is not.
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& x, const auto& y) {
              if (std::get<0>(x) != std::get<0>(y)) {
                return std::get<0>(x) > std::get<0>(y);
              }
              if (std::get<1>(x) != std::get<1>(y)) {
                return std::get<1>(x) < std::get<1>(y);
              }
              return std::get<2>(x) < std::get<2>(y);
            });

  UnionFind uf(n);
  std::unordered_map<size_t, std::vector<size_t>> members;
  auto members_of = [&](size_t root) -> std::vector<size_t>& {
    auto [it, inserted] = members.emplace(root, std::vector<size_t>{});
    if (inserted) it->second.push_back(root);
    return it->second;
  };
  for (const auto& [weight, a, b] : ordered) {
    size_t ra = uf.Find(a);
    size_t rb = uf.Find(b);
    if (ra == rb) continue;
    std::vector<size_t>& ma = members_of(ra);
    std::vector<size_t>& mb = members_of(rb);
    // Average the model's beliefs over every OBSERVED cross edge.
    double sum = 0.0;
    size_t count = 0;
    for (size_t x : ma) {
      for (size_t y : mb) {
        auto it = weight_of.find(key_of(x, y));
        if (it != weight_of.end()) {
          sum += it->second;
          ++count;
        }
      }
    }
    if (count > 0 && sum / static_cast<double>(count) < threshold) {
      continue;  // contradicted merge
    }
    uf.Union(ra, rb);
    size_t new_root = uf.Find(ra);
    std::vector<size_t> merged = std::move(ma);
    merged.insert(merged.end(), mb.begin(), mb.end());
    members.erase(ra);
    members.erase(rb);
    members[new_root] = std::move(merged);
  }
  return uf.Labels();
}

void ResolveLinkConflicts(const JoclProblem& problem,
                          const JoclBeliefs& beliefs,
                          const JointDecodeOptions& options,
                          std::vector<int64_t>* np_link,
                          std::vector<int64_t>* rp_link) {
  const size_t n = problem.triples.size();

  // Per-mention confidence of the decoded link: resolution must not
  // overturn links the model itself is sure about.
  std::vector<double> np_link_confidence(n * 2, 1.0);
  for (size_t t = 0; t < n; ++t) {
    np_link_confidence[t * 2] = beliefs.es_marg[t][beliefs.es_state[t]];
    np_link_confidence[t * 2 + 1] = beliefs.eo_marg[t][beliefs.eo_state[t]];
  }
  // Link-group sizes: mentions per linked entity.
  std::unordered_map<int64_t, size_t> entity_counts;
  for (int64_t e : *np_link) {
    if (e != kNilId) ++entity_counts[e];
  }
  auto resolve = [&](const std::vector<SurfacePair>& pairs,
                     const std::vector<size_t>& pair_state,
                     const std::vector<std::vector<double>>& pair_marg,
                     const std::vector<size_t>& representative,
                     bool subject_role) {
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (pair_state[p] != 1) continue;
      if (pair_marg[p][1] < options.conflict_confidence) continue;
      size_t mention_a =
          representative[pairs[p].a] * 2 + (subject_role ? 0 : 1);
      size_t mention_b =
          representative[pairs[p].b] * 2 + (subject_role ? 0 : 1);
      int64_t e_a = (*np_link)[mention_a];
      int64_t e_b = (*np_link)[mention_b];
      if (e_a == kNilId || e_b == kNilId || e_a == e_b) continue;
      int64_t winner = entity_counts[e_a] >= entity_counts[e_b] ? e_a : e_b;
      int64_t loser = winner == e_a ? e_b : e_a;
      // Both NPs take the label of the larger link group: mentions of
      // the two surfaces that sit in the losing group move over.
      size_t surf_a = pairs[p].a;
      size_t surf_b = pairs[p].b;
      for (size_t t = 0; t < n; ++t) {
        size_t surf_of_t =
            subject_role ? problem.subject_of[t] : problem.object_of[t];
        size_t mention = t * 2 + (subject_role ? 0 : 1);
        if ((surf_of_t == surf_a || surf_of_t == surf_b) &&
            (*np_link)[mention] == loser &&
            np_link_confidence[mention] < options.overturn_guard) {
          (*np_link)[mention] = winner;
        }
      }
    }
  };
  resolve(problem.subject_pairs, beliefs.x_state, beliefs.x_marg,
          problem.subject_rep, true);
  resolve(problem.object_pairs, beliefs.z_state, beliefs.z_marg,
          problem.object_rep, false);

  std::unordered_map<int64_t, size_t> relation_counts;
  for (int64_t r : *rp_link) {
    if (r != kNilId) ++relation_counts[r];
  }
  for (size_t p = 0; p < problem.predicate_pairs.size(); ++p) {
    if (beliefs.y_state[p] != 1) continue;
    if (beliefs.y_marg[p][1] < options.conflict_confidence) continue;
    size_t rep_a = problem.predicate_rep[problem.predicate_pairs[p].a];
    size_t rep_b = problem.predicate_rep[problem.predicate_pairs[p].b];
    int64_t r_a = (*rp_link)[rep_a];
    int64_t r_b = (*rp_link)[rep_b];
    if (r_a == kNilId || r_b == kNilId || r_a == r_b) continue;
    int64_t winner = relation_counts[r_a] >= relation_counts[r_b] ? r_a : r_b;
    int64_t loser = winner == r_a ? r_b : r_a;
    size_t surf_a = problem.predicate_pairs[p].a;
    size_t surf_b = problem.predicate_pairs[p].b;
    for (size_t t = 0; t < n; ++t) {
      if ((problem.predicate_of[t] == surf_a ||
           problem.predicate_of[t] == surf_b) &&
          (*rp_link)[t] == loser) {
        (*rp_link)[t] = winner;
      }
    }
  }
}

void DecodeJointResult(const JoclProblem& problem, const JoclBeliefs& beliefs,
                       const JointDecodeOptions& options,
                       JoclResult* result) {
  const size_t n = problem.triples.size();
  const size_t n_subject_surfaces = problem.subject_surfaces.size();
  const size_t n_object_surfaces = problem.object_surfaces.size();

  // ---- linking decode -----------------------------------------------------
  result->np_link.assign(n * 2, kNilId);
  result->rp_link.assign(n, kNilId);
  if (options.linking) {
    for (size_t t = 0; t < n; ++t) {
      result->np_link[t * 2] =
          StateToId(problem.subject_candidates[problem.subject_of[t]],
                    beliefs.es_state[t]);
      result->np_link[t * 2 + 1] =
          StateToId(problem.object_candidates[problem.object_of[t]],
                    beliefs.eo_state[t]);
      result->rp_link[t] =
          StateToId(problem.predicate_candidates[problem.predicate_of[t]],
                    beliefs.rp_state[t]);
    }
  }

  // ---- canonicalization decode --------------------------------------------
  // Node space: subject surfaces then object surfaces; identical strings
  // across the two roles are pre-merged with weight-1 edges.
  std::vector<size_t> np_labels;
  std::vector<size_t> rp_labels;
  UnionFind np_uf(n_subject_surfaces + n_object_surfaces);
  UnionFind rp_uf(problem.predicate_surfaces.size());
  std::vector<PairEdge> same_string_edges;
  {
    std::unordered_map<std::string, size_t> by_string;
    for (size_t s = 0; s < n_subject_surfaces; ++s) {
      by_string.emplace(problem.subject_surfaces[s], s);
    }
    for (size_t o = 0; o < n_object_surfaces; ++o) {
      auto it = by_string.find(problem.object_surfaces[o]);
      if (it != by_string.end()) {
        same_string_edges.emplace_back(it->second, n_subject_surfaces + o,
                                       1.0);
        np_uf.Union(it->second, n_subject_surfaces + o);
      }
    }
  }
  if (options.canonicalization) {
    std::vector<PairEdge> np_edges = same_string_edges;
    for (size_t p = 0; p < problem.subject_pairs.size(); ++p) {
      np_edges.emplace_back(problem.subject_pairs[p].a,
                            problem.subject_pairs[p].b, beliefs.x_marg[p][1]);
    }
    for (size_t p = 0; p < problem.object_pairs.size(); ++p) {
      np_edges.emplace_back(n_subject_surfaces + problem.object_pairs[p].a,
                            n_subject_surfaces + problem.object_pairs[p].b,
                            beliefs.z_marg[p][1]);
    }
    np_labels = ClusterPairGraph(n_subject_surfaces + n_object_surfaces,
                                 np_edges, options.cluster_threshold);
    std::vector<PairEdge> rp_edges;
    for (size_t p = 0; p < problem.predicate_pairs.size(); ++p) {
      rp_edges.emplace_back(problem.predicate_pairs[p].a,
                            problem.predicate_pairs[p].b,
                            beliefs.y_marg[p][1]);
    }
    rp_labels = ClusterPairGraph(problem.predicate_surfaces.size(), rp_edges,
                                 options.cluster_threshold);
  } else if (options.linking) {
    // JOCLlink fallback: group by linked entity/relation so the result is
    // still a complete joint output.
    std::unordered_map<int64_t, size_t> first_subject;
    for (size_t t = 0; t < n; ++t) {
      int64_t e = result->np_link[t * 2];
      if (e == kNilId) continue;
      auto [it, inserted] = first_subject.emplace(e, problem.subject_of[t]);
      if (!inserted) np_uf.Union(it->second, problem.subject_of[t]);
    }
    for (size_t t = 0; t < n; ++t) {
      int64_t e = result->np_link[t * 2 + 1];
      if (e == kNilId) continue;
      auto [it, inserted] =
          first_subject.emplace(e, n_subject_surfaces + problem.object_of[t]);
      if (!inserted) {
        np_uf.Union(it->second, n_subject_surfaces + problem.object_of[t]);
      }
    }
    std::unordered_map<int64_t, size_t> first_predicate;
    for (size_t t = 0; t < n; ++t) {
      int64_t r = result->rp_link[t];
      if (r == kNilId) continue;
      auto [it, inserted] = first_predicate.emplace(r, problem.predicate_of[t]);
      if (!inserted) rp_uf.Union(it->second, problem.predicate_of[t]);
    }
  }

  // ---- conflict resolution (paper §3.5) -----------------------------------
  if (options.canonicalization && options.linking) {
    ResolveLinkConflicts(problem, beliefs, options, &result->np_link,
                         &result->rp_link);
  }

  // ---- materialize mention cluster labels ---------------------------------
  if (np_labels.empty()) np_labels = np_uf.Labels();
  if (rp_labels.empty()) rp_labels = rp_uf.Labels();
  result->np_cluster.resize(n * 2);
  result->rp_cluster.resize(n);
  for (size_t t = 0; t < n; ++t) {
    result->np_cluster[t * 2] = np_labels[problem.subject_of[t]];
    result->np_cluster[t * 2 + 1] =
        np_labels[n_subject_surfaces + problem.object_of[t]];
    result->rp_cluster[t] = rp_labels[problem.predicate_of[t]];
  }
}

}  // namespace jocl
