#include "core/decode.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/union_find.h"
#include "core/jocl.h"
#include "util/worker_pool.h"

namespace jocl {
namespace {

// Maps a linking-variable state to a CKB id: state 0 is NIL, state k is
// candidate k-1.
template <typename Candidate>
int64_t StateToId(const std::vector<Candidate>& candidates, size_t state) {
  if (state == 0 || state > candidates.size()) return kNilId;
  return candidates[state - 1].id;
}

/// Find with path compression over a sparse map-backed forest (the
/// per-group merge state of the parallel clustering path — group node
/// sets are small and sparse in the global id space).
size_t LocalFind(std::unordered_map<size_t, size_t>& parent, size_t x) {
  auto it = parent.emplace(x, x).first;
  size_t root = it->second;
  while (true) {
    auto next = parent.find(root);
    if (next->second == root) break;
    root = next->second;
  }
  while (parent[x] != root) {
    size_t next = parent[x];
    parent[x] = root;
    x = next;
  }
  return root;
}

}  // namespace

std::vector<size_t> ClusterPairGraph(size_t n,
                                     const std::vector<PairEdge>& edges,
                                     double threshold, size_t threads) {
  // Deduplicated edge lookup (max weight wins) + adjacency.
  std::unordered_map<uint64_t, double> weight_of;
  auto key_of = [](size_t a, size_t b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  for (const auto& [a, b, weight] : edges) {
    auto [it, inserted] = weight_of.emplace(key_of(a, b), weight);
    if (!inserted) it->second = std::max(it->second, weight);
  }
  std::vector<std::tuple<double, size_t, size_t>> ordered;
  ordered.reserve(weight_of.size());
  for (const auto& [key, weight] : weight_of) {
    if (weight >= threshold) {
      ordered.emplace_back(weight, static_cast<size_t>(key >> 32),
                           static_cast<size_t>(key & 0xffffffff));
    }
  }
  // The sort's full tie-break makes the order deterministic even though
  // the map iteration above is not.
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& x, const auto& y) {
              if (std::get<0>(x) != std::get<0>(y)) {
                return std::get<0>(x) > std::get<0>(y);
              }
              if (std::get<1>(x) != std::get<1>(y)) {
                return std::get<1>(x) < std::get<1>(y);
              }
              return std::get<2>(x) < std::get<2>(y);
            });

  UnionFind uf(n);
  if (threads <= 1 || ordered.size() < 2) {
    // Sequential merge process over the global edge order.
    std::unordered_map<size_t, std::vector<size_t>> members;
    auto members_of = [&](size_t root) -> std::vector<size_t>& {
      auto [it, inserted] = members.emplace(root, std::vector<size_t>{});
      if (inserted) it->second.push_back(root);
      return it->second;
    };
    for (const auto& [weight, a, b] : ordered) {
      size_t ra = uf.Find(a);
      size_t rb = uf.Find(b);
      if (ra == rb) continue;
      std::vector<size_t>& ma = members_of(ra);
      std::vector<size_t>& mb = members_of(rb);
      // Average the model's beliefs over every OBSERVED cross edge.
      double sum = 0.0;
      size_t count = 0;
      for (size_t x : ma) {
        for (size_t y : mb) {
          auto it = weight_of.find(key_of(x, y));
          if (it != weight_of.end()) {
            sum += it->second;
            ++count;
          }
        }
      }
      if (count > 0 && sum / static_cast<double>(count) < threshold) {
        continue;  // contradicted merge
      }
      uf.Union(ra, rb);
      size_t new_root = uf.Find(ra);
      std::vector<size_t> merged = std::move(ma);
      merged.insert(merged.end(), mb.begin(), mb.end());
      members.erase(ra);
      members.erase(rb);
      members[new_root] = std::move(merged);
    }
    return uf.Labels();
  }

  // Parallel path: merges never cross a connected component of the
  // thresholded edge graph, and the veto only consults weight_of entries
  // between members of merging clusters (same component), so components
  // run independently. Each worker replays its component's edges in the
  // global order against a component-local forest; the accepted unions
  // are then applied to the shared structure. The partition — and hence
  // Labels(), which is partition-determined — is byte-identical to the
  // sequential run.
  UnionFind pregroup(n);
  for (const auto& [weight, a, b] : ordered) pregroup.Union(a, b);
  std::unordered_map<size_t, size_t> group_index;
  std::vector<std::vector<size_t>> group_edges;
  for (size_t e = 0; e < ordered.size(); ++e) {
    size_t root = pregroup.Find(std::get<1>(ordered[e]));
    auto [it, inserted] = group_index.emplace(root, group_edges.size());
    if (inserted) group_edges.emplace_back();
    group_edges[it->second].push_back(e);
  }
  std::vector<std::vector<std::pair<size_t, size_t>>> accepted(
      group_edges.size());
  RunOnPool(
      group_edges.size(), threads,
      [&](size_t g) { return group_edges[g].size(); },
      [&](size_t g) {
        std::unordered_map<size_t, size_t> parent;
        std::unordered_map<size_t, std::vector<size_t>> members;
        auto members_of = [&](size_t root) -> std::vector<size_t>& {
          auto [it, inserted] = members.emplace(root, std::vector<size_t>{});
          if (inserted) it->second.push_back(root);
          return it->second;
        };
        for (size_t e : group_edges[g]) {
          const auto& [weight, a, b] = ordered[e];
          size_t ra = LocalFind(parent, a);
          size_t rb = LocalFind(parent, b);
          if (ra == rb) continue;
          std::vector<size_t>& ma = members_of(ra);
          std::vector<size_t>& mb = members_of(rb);
          double sum = 0.0;
          size_t count = 0;
          for (size_t x : ma) {
            for (size_t y : mb) {
              auto it = weight_of.find(key_of(x, y));
              if (it != weight_of.end()) {
                sum += it->second;
                ++count;
              }
            }
          }
          if (count > 0 && sum / static_cast<double>(count) < threshold) {
            continue;  // contradicted merge
          }
          parent[rb] = ra;
          accepted[g].emplace_back(a, b);
          std::vector<size_t> merged = std::move(ma);
          merged.insert(merged.end(), mb.begin(), mb.end());
          members.erase(ra);
          members.erase(rb);
          members[ra] = std::move(merged);
        }
      });
  for (const auto& list : accepted) {
    for (const auto& [a, b] : list) uf.Union(a, b);
  }
  return uf.Labels();
}

void ResolveLinkConflicts(const JoclProblem& problem,
                          const JoclBeliefs& beliefs,
                          const JointDecodeOptions& options,
                          std::vector<int64_t>* np_link,
                          std::vector<int64_t>* rp_link) {
  const size_t n = problem.triples.size();

  // Per-mention confidence of the decoded link: resolution must not
  // overturn links the model itself is sure about.
  std::vector<double> np_link_confidence(n * 2, 1.0);
  for (size_t t = 0; t < n; ++t) {
    np_link_confidence[t * 2] = beliefs.es_marg[t][beliefs.es_state[t]];
    np_link_confidence[t * 2 + 1] = beliefs.eo_marg[t][beliefs.eo_state[t]];
  }
  // Link-group sizes: mentions per linked entity/relation. Snapshots of
  // the *initial* decode, never updated during resolution (read-only, so
  // conflict groups can resolve concurrently).
  std::unordered_map<int64_t, size_t> entity_counts;
  for (int64_t e : *np_link) {
    if (e != kNilId) ++entity_counts[e];
  }
  std::unordered_map<int64_t, size_t> relation_counts;
  for (int64_t r : *rp_link) {
    if (r != kNilId) ++relation_counts[r];
  }
  auto count_of = [](const std::unordered_map<int64_t, size_t>& counts,
                     int64_t id) {
    auto it = counts.find(id);
    return it == counts.end() ? size_t{0} : it->second;
  };

  // Per-surface mention lists: relabeling a pair's losing group touches
  // only the mentions of its two surfaces, not the whole triple set.
  auto mentions_by_surface = [&](const std::vector<size_t>& of,
                                 size_t n_surfaces) {
    std::vector<std::vector<size_t>> mentions(n_surfaces);
    for (size_t t = 0; t < n; ++t) mentions[of[t]].push_back(t);
    return mentions;
  };
  auto subject_mentions =
      mentions_by_surface(problem.subject_of, problem.subject_surfaces.size());
  auto object_mentions =
      mentions_by_surface(problem.object_of, problem.object_surfaces.size());
  auto predicate_mentions = mentions_by_surface(
      problem.predicate_of, problem.predicate_surfaces.size());

  // Qualifying pairs grouped by surface connectivity (the conflict
  // groups). A pair only reads and writes link state of its own group's
  // surfaces, and the count snapshots above are read-only, so groups are
  // independent: per-group processing in the original pair order is
  // byte-identical to the sequential full scan.
  auto group_pairs = [&](const std::vector<SurfacePair>& pairs,
                         const std::vector<size_t>& pair_state,
                         const std::vector<std::vector<double>>& pair_marg,
                         size_t n_surfaces) {
    std::vector<std::vector<size_t>> groups;
    if (pair_marg.size() != pairs.size()) return groups;  // family ablated
    std::vector<size_t> qualifying;
    for (size_t p = 0; p < pairs.size(); ++p) {
      if (pair_state[p] != 1) continue;
      if (pair_marg[p][1] < options.conflict_confidence) continue;
      qualifying.push_back(p);
    }
    UnionFind uf(n_surfaces);
    for (size_t p : qualifying) uf.Union(pairs[p].a, pairs[p].b);
    std::unordered_map<size_t, size_t> index;
    for (size_t p : qualifying) {
      size_t root = uf.Find(pairs[p].a);
      auto [it, inserted] = index.emplace(root, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(p);
    }
    return groups;
  };
  auto subject_groups =
      group_pairs(problem.subject_pairs, beliefs.x_state, beliefs.x_marg,
                  problem.subject_surfaces.size());
  auto object_groups =
      group_pairs(problem.object_pairs, beliefs.z_state, beliefs.z_marg,
                  problem.object_surfaces.size());
  auto predicate_groups =
      group_pairs(problem.predicate_pairs, beliefs.y_state, beliefs.y_marg,
                  problem.predicate_surfaces.size());

  auto resolve_np_group = [&](const std::vector<size_t>& group,
                              bool subject_role) {
    const std::vector<SurfacePair>& pairs =
        subject_role ? problem.subject_pairs : problem.object_pairs;
    const std::vector<size_t>& representative =
        subject_role ? problem.subject_rep : problem.object_rep;
    const std::vector<std::vector<size_t>>& mentions =
        subject_role ? subject_mentions : object_mentions;
    const size_t offset = subject_role ? 0 : 1;
    for (size_t p : group) {
      size_t mention_a = representative[pairs[p].a] * 2 + offset;
      size_t mention_b = representative[pairs[p].b] * 2 + offset;
      int64_t e_a = (*np_link)[mention_a];
      int64_t e_b = (*np_link)[mention_b];
      if (e_a == kNilId || e_b == kNilId || e_a == e_b) continue;
      int64_t winner = count_of(entity_counts, e_a) >=
                               count_of(entity_counts, e_b)
                           ? e_a
                           : e_b;
      int64_t loser = winner == e_a ? e_b : e_a;
      // Both NPs take the label of the larger link group: mentions of
      // the two surfaces that sit in the losing group move over.
      for (size_t surf : {pairs[p].a, pairs[p].b}) {
        for (size_t t : mentions[surf]) {
          size_t mention = t * 2 + offset;
          if ((*np_link)[mention] == loser &&
              np_link_confidence[mention] < options.overturn_guard) {
            (*np_link)[mention] = winner;
          }
        }
      }
    }
  };
  auto resolve_rp_group = [&](const std::vector<size_t>& group) {
    for (size_t p : group) {
      size_t rep_a = problem.predicate_rep[problem.predicate_pairs[p].a];
      size_t rep_b = problem.predicate_rep[problem.predicate_pairs[p].b];
      int64_t r_a = (*rp_link)[rep_a];
      int64_t r_b = (*rp_link)[rep_b];
      if (r_a == kNilId || r_b == kNilId || r_a == r_b) continue;
      int64_t winner = count_of(relation_counts, r_a) >=
                               count_of(relation_counts, r_b)
                           ? r_a
                           : r_b;
      int64_t loser = winner == r_a ? r_b : r_a;
      for (size_t surf :
           {problem.predicate_pairs[p].a, problem.predicate_pairs[p].b}) {
        for (size_t t : predicate_mentions[surf]) {
          if ((*rp_link)[t] == loser) (*rp_link)[t] = winner;
        }
      }
    }
  };

  // One task per (role, conflict group); subject and object roles write
  // disjoint mention parities, predicates their own array, so every task
  // touches state no other task reads or writes.
  struct Task {
    int role;  // 0 = subject, 1 = object, 2 = predicate
    const std::vector<size_t>* group;
  };
  std::vector<Task> tasks;
  for (const auto& group : subject_groups) tasks.push_back({0, &group});
  for (const auto& group : object_groups) tasks.push_back({1, &group});
  for (const auto& group : predicate_groups) tasks.push_back({2, &group});
  RunOnPool(
      tasks.size(), options.threads,
      [&](size_t i) { return tasks[i].group->size(); },
      [&](size_t i) {
        switch (tasks[i].role) {
          case 0:
            resolve_np_group(*tasks[i].group, /*subject_role=*/true);
            break;
          case 1:
            resolve_np_group(*tasks[i].group, /*subject_role=*/false);
            break;
          default:
            resolve_rp_group(*tasks[i].group);
            break;
        }
      });
}

void DecodeJointResult(const JoclProblem& problem, const JoclBeliefs& beliefs,
                       const JointDecodeOptions& options,
                       JoclResult* result) {
  const size_t n = problem.triples.size();
  const size_t n_subject_surfaces = problem.subject_surfaces.size();
  const size_t n_object_surfaces = problem.object_surfaces.size();

  // ---- linking decode -----------------------------------------------------
  result->np_link.assign(n * 2, kNilId);
  result->rp_link.assign(n, kNilId);
  if (options.linking) {
    for (size_t t = 0; t < n; ++t) {
      result->np_link[t * 2] =
          StateToId(problem.subject_candidates[problem.subject_of[t]],
                    beliefs.es_state[t]);
      result->np_link[t * 2 + 1] =
          StateToId(problem.object_candidates[problem.object_of[t]],
                    beliefs.eo_state[t]);
      result->rp_link[t] =
          StateToId(problem.predicate_candidates[problem.predicate_of[t]],
                    beliefs.rp_state[t]);
    }
  }

  // ---- canonicalization decode --------------------------------------------
  // Node space: subject surfaces then object surfaces; identical strings
  // across the two roles are pre-merged with weight-1 edges.
  std::vector<size_t> np_labels;
  std::vector<size_t> rp_labels;
  UnionFind np_uf(n_subject_surfaces + n_object_surfaces);
  UnionFind rp_uf(problem.predicate_surfaces.size());
  std::vector<PairEdge> same_string_edges;
  {
    std::unordered_map<std::string, size_t> by_string;
    for (size_t s = 0; s < n_subject_surfaces; ++s) {
      by_string.emplace(problem.subject_surfaces[s], s);
    }
    for (size_t o = 0; o < n_object_surfaces; ++o) {
      auto it = by_string.find(problem.object_surfaces[o]);
      if (it != by_string.end()) {
        same_string_edges.emplace_back(it->second, n_subject_surfaces + o,
                                       1.0);
        np_uf.Union(it->second, n_subject_surfaces + o);
      }
    }
  }
  if (options.canonicalization) {
    std::vector<PairEdge> np_edges = same_string_edges;
    for (size_t p = 0; p < problem.subject_pairs.size(); ++p) {
      np_edges.emplace_back(problem.subject_pairs[p].a,
                            problem.subject_pairs[p].b, beliefs.x_marg[p][1]);
    }
    for (size_t p = 0; p < problem.object_pairs.size(); ++p) {
      np_edges.emplace_back(n_subject_surfaces + problem.object_pairs[p].a,
                            n_subject_surfaces + problem.object_pairs[p].b,
                            beliefs.z_marg[p][1]);
    }
    np_labels = ClusterPairGraph(n_subject_surfaces + n_object_surfaces,
                                 np_edges, options.cluster_threshold,
                                 options.threads);
    std::vector<PairEdge> rp_edges;
    for (size_t p = 0; p < problem.predicate_pairs.size(); ++p) {
      rp_edges.emplace_back(problem.predicate_pairs[p].a,
                            problem.predicate_pairs[p].b,
                            beliefs.y_marg[p][1]);
    }
    rp_labels = ClusterPairGraph(problem.predicate_surfaces.size(), rp_edges,
                                 options.cluster_threshold, options.threads);
  } else if (options.linking) {
    // JOCLlink fallback: group by linked entity/relation so the result is
    // still a complete joint output.
    std::unordered_map<int64_t, size_t> first_subject;
    for (size_t t = 0; t < n; ++t) {
      int64_t e = result->np_link[t * 2];
      if (e == kNilId) continue;
      auto [it, inserted] = first_subject.emplace(e, problem.subject_of[t]);
      if (!inserted) np_uf.Union(it->second, problem.subject_of[t]);
    }
    for (size_t t = 0; t < n; ++t) {
      int64_t e = result->np_link[t * 2 + 1];
      if (e == kNilId) continue;
      auto [it, inserted] =
          first_subject.emplace(e, n_subject_surfaces + problem.object_of[t]);
      if (!inserted) {
        np_uf.Union(it->second, n_subject_surfaces + problem.object_of[t]);
      }
    }
    std::unordered_map<int64_t, size_t> first_predicate;
    for (size_t t = 0; t < n; ++t) {
      int64_t r = result->rp_link[t];
      if (r == kNilId) continue;
      auto [it, inserted] = first_predicate.emplace(r, problem.predicate_of[t]);
      if (!inserted) rp_uf.Union(it->second, problem.predicate_of[t]);
    }
  }

  // ---- conflict resolution (paper §3.5) -----------------------------------
  if (options.canonicalization && options.linking) {
    ResolveLinkConflicts(problem, beliefs, options, &result->np_link,
                         &result->rp_link);
  }

  // ---- materialize mention cluster labels ---------------------------------
  if (np_labels.empty()) np_labels = np_uf.Labels();
  if (rp_labels.empty()) rp_labels = rp_uf.Labels();
  result->np_cluster.resize(n * 2);
  result->rp_cluster.resize(n);
  for (size_t t = 0; t < n; ++t) {
    result->np_cluster[t * 2] = np_labels[problem.subject_of[t]];
    result->np_cluster[t * 2 + 1] =
        np_labels[n_subject_surfaces + problem.object_of[t]];
    result->rp_cluster[t] = rp_labels[problem.predicate_of[t]];
  }
}

}  // namespace jocl
