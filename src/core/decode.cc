#include "core/decode.h"

#include <algorithm>
#include <unordered_map>

#include "cluster/union_find.h"

namespace jocl {

std::vector<size_t> ClusterPairGraph(size_t n,
                                     const std::vector<PairEdge>& edges,
                                     double threshold) {
  // Deduplicated edge lookup (max weight wins) + adjacency.
  std::unordered_map<uint64_t, double> weight_of;
  auto key_of = [](size_t a, size_t b) {
    return (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
  };
  for (const auto& [a, b, weight] : edges) {
    auto [it, inserted] = weight_of.emplace(key_of(a, b), weight);
    if (!inserted) it->second = std::max(it->second, weight);
  }
  std::vector<std::tuple<double, size_t, size_t>> ordered;
  ordered.reserve(weight_of.size());
  for (const auto& [key, weight] : weight_of) {
    if (weight >= threshold) {
      ordered.emplace_back(weight, static_cast<size_t>(key >> 32),
                           static_cast<size_t>(key & 0xffffffff));
    }
  }
  // The sort's full tie-break makes the order deterministic even though
  // the map iteration above is not.
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& x, const auto& y) {
              if (std::get<0>(x) != std::get<0>(y)) {
                return std::get<0>(x) > std::get<0>(y);
              }
              if (std::get<1>(x) != std::get<1>(y)) {
                return std::get<1>(x) < std::get<1>(y);
              }
              return std::get<2>(x) < std::get<2>(y);
            });

  UnionFind uf(n);
  std::unordered_map<size_t, std::vector<size_t>> members;
  auto members_of = [&](size_t root) -> std::vector<size_t>& {
    auto [it, inserted] = members.emplace(root, std::vector<size_t>{});
    if (inserted) it->second.push_back(root);
    return it->second;
  };
  for (const auto& [weight, a, b] : ordered) {
    size_t ra = uf.Find(a);
    size_t rb = uf.Find(b);
    if (ra == rb) continue;
    std::vector<size_t>& ma = members_of(ra);
    std::vector<size_t>& mb = members_of(rb);
    // Average the model's beliefs over every OBSERVED cross edge.
    double sum = 0.0;
    size_t count = 0;
    for (size_t x : ma) {
      for (size_t y : mb) {
        auto it = weight_of.find(key_of(x, y));
        if (it != weight_of.end()) {
          sum += it->second;
          ++count;
        }
      }
    }
    if (count > 0 && sum / static_cast<double>(count) < threshold) {
      continue;  // contradicted merge
    }
    uf.Union(ra, rb);
    size_t new_root = uf.Find(ra);
    std::vector<size_t> merged = std::move(ma);
    merged.insert(merged.end(), mb.begin(), mb.end());
    members.erase(ra);
    members.erase(rb);
    members[new_root] = std::move(merged);
  }
  return uf.Labels();
}

}  // namespace jocl
