#ifndef JOCL_CORE_FEATURE_CONFIG_H_
#define JOCL_CORE_FEATURE_CONFIG_H_

#include <cstddef>
#include <string>
#include <vector>

namespace jocl {

/// \brief Layout of the shared weight vector (paper §3: α1..α6, β1..β7).
///
/// Every factor's feature entries index into one global vector so that all
/// F1 factors share α1, all U5 factors share β5, and so on. 28 weights
/// total.
struct WeightLayout {
  // α1 — F1 subject canonicalization: f_idf, f_emb, f_PPDB, f_cand.
  // f_cand (candidate-agreement, the SIST-style side signal) is an
  // extension beyond the paper's three — added through exactly the
  // mechanism §3 advertises ("flexible ... to fit any new signals").
  static constexpr size_t kAlpha1 = 0;
  // α2 — F2 predicate canonicalization: f_idf, f_emb, f_PPDB, f_AMIE, f_KBP.
  static constexpr size_t kAlpha2 = 4;
  // α3 — F3 object canonicalization: f_idf, f_emb, f_PPDB, f_cand.
  static constexpr size_t kAlpha3 = 9;
  // α4 — F4 subject linking: f_pop, f'_emb, f'_PPDB.
  static constexpr size_t kAlpha4 = 13;
  // α5 — F5 predicate linking: f_ngram, f_LD, f'_emb, f'_PPDB.
  static constexpr size_t kAlpha5 = 16;
  // α6 — F6 object linking: f_pop, f'_emb, f'_PPDB.
  static constexpr size_t kAlpha6 = 20;
  // β1..β3 — U1..U3 transitive relation factors.
  static constexpr size_t kBeta1 = 23;
  static constexpr size_t kBeta2 = 24;
  static constexpr size_t kBeta3 = 25;
  // β4 — U4 fact inclusion factor.
  static constexpr size_t kBeta4 = 26;
  // β5..β7 — U5..U7 consistency factors.
  static constexpr size_t kBeta5 = 27;
  static constexpr size_t kBeta6 = 28;
  static constexpr size_t kBeta7 = 29;

  static constexpr size_t kCount = 30;

  /// Human-readable name of a weight (diagnostics and EXPERIMENTS.md).
  static std::string Name(size_t weight);
};

/// \brief Which feature functions are active per factor family — the knob
/// behind Table 5's JOCL-single / JOCL-double / JOCL-all variants.
/// Disabled features are simply not emitted into the factor tables (their
/// weights stay unused).
struct FeatureMask {
  // F1/F3 (and the NP side generally).
  bool np_idf = true;
  bool np_emb = true;
  bool np_ppdb = true;
  /// Extension signal: candidate-agreement between the two NPs' entity
  /// candidate sets (soft overlap weighted by popularity).
  bool np_cand = true;
  // F2 extras.
  bool rp_amie = true;
  bool rp_kbp = true;
  // F4/F6.
  bool link_pop = true;
  bool link_emb = true;
  bool link_ppdb = true;
  // F5.
  bool rel_ngram = true;
  bool rel_ld = true;
  bool rel_emb = true;
  bool rel_ppdb = true;

  /// Table 5 row "JOCL-single": f_idf / f_idf / f_pop / f_ngram.
  static FeatureMask Single();
  /// Table 5 row "JOCL-double": adds the embedding feature everywhere.
  static FeatureMask Double();
  /// Table 5 row "JOCL-all": every feature function (the default).
  static FeatureMask All();
};

}  // namespace jocl

#endif  // JOCL_CORE_FEATURE_CONFIG_H_
