#ifndef JOCL_CORE_PROBLEM_BUILDER_H_
#define JOCL_CORE_PROBLEM_BUILDER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/problem.h"
#include "core/shard.h"

namespace jocl {

/// \brief Incremental counterpart of `BuildProblem`: maintains the
/// mention, blocking-bucket and pair-variable state of the active triple
/// set across ingestion batches, so each batch pays for its *delta* plus
/// a cheap O(active) emission of the output arrays — no re-tokenization,
/// no re-similarity, no candidate generation for surfaces it has seen.
///
/// **Byte-identity contract.** For any batch sequence reaching an active
/// set A, `Apply` emits a `JoclProblem` byte-identical to
/// `BuildProblem(dataset, signals, A, options, cache)` (property-tested
/// in tests/session_test.cc). The invariants that make this hold:
///
///  * Surfaces, reps and candidate lists are pure functions of A
///    (first-appearance order over ascending triple ids).
///  * A pair is admitted iff it co-occurs in a qualifying token bucket
///    with IDF similarity >= threshold, or shares a PPDB / top-candidate
///    bucket of active size in [2, max_block_size]. The builder keeps
///    per-pair reference counts per bucket family, updated by bucket
///    membership transitions (including cap crossings), so "admitted" is
///    a pure function of the final active set.
///  * `IdfTable::Similarity` iterates unordered sets, so its value can
///    differ bitwise under argument swap; scratch always calls it with
///    the lower-ranked surface first, and ranks change across batches.
///    The builder memoizes *both* orientations per pair and emits the
///    one matching the current batch's rank order.
///  * The final (idf desc, a, b) sort + cap + (a, b) re-sort are total
///    orders over unique keys, so emission order is irrelevant.
///
/// The builder also emits the batch's `FrontEndDelta` (stable surface
/// ids + admitted-pair transitions) for the `IncrementalPartitioner`,
/// and mirrors `ProblemCache` hit/miss counters exactly as the memoized
/// scratch build would count them — on the calling thread only, so the
/// parallel candidate prefill cannot double-count (misses are counted
/// per consulted surface, not per fill).
class ProblemBuilder {
 public:
  /// \p dataset and \p signals must outlive the builder. \p cache (may be
  /// null) is the session's persistent candidate memo: the builder fills
  /// it for new surfaces and mirrors its hit/miss counters.
  ProblemBuilder(const Dataset* dataset, const SignalBundle* signals,
                 const ProblemOptions& options, ProblemCache* cache);

  /// False when \p options selects a blocking stage the incremental path
  /// does not model (embedding-neighbor blocking, whose admission depends
  /// on a global emission cap) — callers fall back to scratch
  /// `BuildProblem`.
  static bool Supports(const ProblemOptions& options);

  /// Applies one batch. \p added / \p removed are disjoint sorted dataset
  /// triple ids; \p active is the post-update active set (sorted). Emits
  /// the full problem over \p active into \p problem and the batch's
  /// stable-id delta into \p delta (both cleared first). \p threads > 1
  /// fans candidate generation and similarity evaluation out on the
  /// worker pool; the result is byte-identical for any thread count.
  void Apply(const std::vector<size_t>& added,
             const std::vector<size_t>& removed,
             const std::vector<size_t>& active, size_t threads,
             JoclProblem* problem, FrontEndDelta* delta);

  // -- batch introspection (valid until the next Apply) ----------------------

  /// Surface ids first interned by the last Apply, in discovery order —
  /// what the session's delta signal-cache registration walks.
  const std::vector<uint32_t>& new_np_sids() const { return new_np_sids_; }
  const std::vector<uint32_t>& new_rp_sids() const { return new_rp_sids_; }

  const std::string& np_surface(uint32_t sid) const {
    return np_meta_[sid].surface;
  }
  const std::string& rp_surface(uint32_t sid) const {
    return rp_meta_[sid].surface;
  }
  const std::vector<EntityCandidate>& np_candidates(uint32_t sid) const {
    return np_meta_[sid].candidates;
  }
  const std::vector<RelationCandidate>& rp_candidates(uint32_t sid) const {
    return rp_meta_[sid].candidates;
  }

  /// Sorted active dataset-triple mentions of one surface (empty when
  /// retired). Role indices match FrontEndDelta: 0 = subject,
  /// 1 = predicate, 2 = object. The session maps delta events to the
  /// components they can affect through these lists.
  const std::vector<size_t>& mentions(size_t role, uint32_t sid) const {
    return roles_[role].mentions[sid];
  }

 private:
  static constexpr size_t kSubject = 0;
  static constexpr size_t kPredicate = 1;
  static constexpr size_t kObject = 2;

  /// Immutable per-surface facts, computed once at intern time (the
  /// candidate lists are the expensive part; they fan out on the pool).
  struct NpMeta {
    std::string surface;
    std::vector<std::pair<std::string, uint32_t>> tokens;  ///< non-stop, mult.
    std::optional<std::string> ppdb_rep;
    std::vector<EntityCandidate> candidates;
    std::vector<int64_t> blocking_ids;  ///< top-k candidate entity ids
    bool in_problem_cache = false;      ///< consulted-counter mirror state
  };
  struct RpMeta {
    std::string surface;
    std::vector<std::pair<std::string, uint32_t>> tokens;
    std::optional<std::string> ppdb_rep;
    std::vector<RelationCandidate> candidates;
    bool in_problem_cache = false;
  };

  /// One blocking bucket: active members with occurrence counts (token
  /// buckets count token multiplicity inside a phrase, like scratch's
  /// per-occurrence membership; PPDB/candidate buckets are 0/1).
  struct Bucket {
    std::unordered_map<uint32_t, uint32_t> occ;
    size_t size = 0;  ///< sum of occurrence counts (the cap is on this)
  };

  static constexpr int kTokenRefs = 0;
  static constexpr int kPpdbRefs = 1;
  static constexpr int kCandRefs = 2;

  /// Persistent pair-variable record. Lives in the slab forever once
  /// created (the memoized similarities are the point); `live` indexes
  /// recs with any positive refs or a pending removal event.
  struct PairRec {
    uint32_t lo = 0, hi = 0;  ///< surface ids, lo < hi
    int32_t refs[3] = {0, 0, 0};
    /// Similarity(surface(lo), surface(hi)) / the swapped call; NaN unset.
    double sim_lo_first = std::numeric_limits<double>::quiet_NaN();
    double sim_hi_first = std::numeric_limits<double>::quiet_NaN();
    bool admitted_prev = false;
    /// candidate_blocked as last emitted (only meaningful while
    /// admitted_prev). A flag flip without an admission change still
    /// alters the emitted SurfacePair, so it raises a (redundant-edge)
    /// pair event — the session's provably-clean shard skip depends on
    /// every emission change being announced.
    bool blocked_prev = false;
    bool in_live = false;
  };

  /// Mutable per-role blocking state over one surface-id space.
  struct RoleState {
    std::vector<std::vector<size_t>> mentions;  ///< sorted active triples/sid
    std::unordered_map<std::string, Bucket> token_buckets;
    std::unordered_map<std::string, Bucket> ppdb_buckets;
    std::unordered_map<int64_t, Bucket> cand_buckets;  ///< NP roles only
    std::vector<PairRec> slab;
    std::unordered_map<uint64_t, size_t> pair_index;
    std::vector<size_t> live;
    // Rank assignment epoch arrays (per-batch first-appearance order).
    std::vector<uint32_t> rank_of;
    std::vector<uint32_t> rank_epoch;
    uint32_t epoch = 0;
  };

  uint32_t InternNp(const std::string& phrase);
  uint32_t InternRp(const std::string& phrase);
  void EnsureTripleInterned(size_t t);
  void PrepareNewSurfaces(size_t threads);
  bool IsNpRole(size_t role) const { return role != kPredicate; }
  const std::string& SurfaceOf(size_t role, uint32_t sid) const {
    return IsNpRole(role) ? np_meta_[sid].surface : rp_meta_[sid].surface;
  }

  void BumpRef(RoleState& state, uint32_t a, uint32_t b, int which,
               int32_t delta);
  void AddToBucket(RoleState& state, Bucket& bucket, uint32_t sid, uint32_t k,
                   int which);
  void RemoveFromBucket(RoleState& state, Bucket& bucket, uint32_t sid,
                        int which);
  void RescoreBucket(RoleState& state, const Bucket& bucket, int which,
                     int32_t sign);
  void ActivateSurface(size_t role, uint32_t sid);
  void DeactivateSurface(size_t role, uint32_t sid);

  void EmitRole(size_t role, const std::vector<size_t>& active,
                size_t threads, std::vector<std::string>* surfaces,
                std::vector<size_t>* of, std::vector<size_t>* rep,
                std::vector<SurfacePair>* pairs, FrontEndDelta* delta,
                std::vector<uint32_t>* by_rank);

  const Dataset* dataset_;
  const SignalBundle* signals_;
  ProblemOptions options_;
  ProblemCache* cache_;

  std::unordered_map<std::string, uint32_t> np_index_;
  std::unordered_map<std::string, uint32_t> rp_index_;
  std::vector<NpMeta> np_meta_;
  std::vector<RpMeta> rp_meta_;
  /// (subject np sid, rp sid, object np sid) per dataset triple,
  /// interned lazily on first activation.
  std::vector<std::array<uint32_t, 3>> sid_of_triple_;
  std::vector<uint8_t> triple_interned_;

  RoleState roles_[3];

  std::vector<uint32_t> new_np_sids_;
  std::vector<uint32_t> new_rp_sids_;
};

}  // namespace jocl

#endif  // JOCL_CORE_PROBLEM_BUILDER_H_
