#ifndef JOCL_CORE_SESSION_H_
#define JOCL_CORE_SESSION_H_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/problem_builder.h"
#include "core/runtime.h"

namespace jocl {

/// \brief Execution knobs of the streaming session (orthogonal to the
/// model configuration in JoclOptions).
struct SessionOptions {
  /// Worker threads running dirty shards: 1 = sequential, 0 = one per
  /// hardware thread. Purely an execution choice.
  size_t num_threads = 0;
  /// Warm-start dirty shards' LBP from the previous batch's beliefs.
  /// **Approximate**: a warm-started run approaches the same fixed point
  /// within the LBP tolerance but is not bit-identical to a cold run, so
  /// the cold-restart equivalence guarantee only holds with this off
  /// (the default). Reuse of *clean* shards — where the speedup comes
  /// from — is exact either way.
  bool warm_start = false;
  /// A cached component unused for this many consecutive batches is
  /// evicted. Retention matters: a removal that splits a shard often
  /// restores components solved *before* the merge, and retaining them
  /// makes the split free.
  size_t stale_retention = 8;
  /// Run the O(Δ) front-end: the persistent `ProblemBuilder` +
  /// `IncrementalPartitioner` pair instead of a from-scratch
  /// `BuildProblem` + `PartitionProblem` per batch. Byte-identical output
  /// (property-tested); off reproduces the legacy rebuild path exactly —
  /// the baseline `bench_incremental` gates speedups against. Ignored
  /// (scratch path) when the problem options select a blocking stage the
  /// incremental builder does not model (`ProblemBuilder::Supports`).
  bool incremental_frontend = true;
  /// Worker threads for the front-end's parallel stages (candidate
  /// generation, similarity evaluation, dirty-shard materialization):
  /// 1 = sequential, 0 = one per hardware thread. Results are
  /// byte-identical for any setting.
  size_t frontend_threads = 0;
};

/// \brief Per-batch report of one AddTriples / RemoveTriples call.
struct SessionStats {
  double problem_seconds = 0.0;    ///< global problem rebuild (memoized)
  double cache_seconds = 0.0;      ///< append-only signal-cache ingestion
  double partition_seconds = 0.0;  ///< union-find sharding + delta classify
  double shard_seconds = 0.0;      ///< dirty-shard inference, wall
  double graph_seconds = 0.0;      ///< dirty graph build+compile, summed
  double infer_seconds = 0.0;      ///< dirty engine run+extract, summed
  double decode_seconds = 0.0;     ///< global decode + conflict resolution
  size_t added = 0;                ///< triples actually added
  size_t removed = 0;              ///< triples actually removed
  size_t shards = 0;               ///< components in the new partition
  size_t dirty_shards = 0;         ///< shards re-inferred this batch
  size_t clean_shards = 0;         ///< shards served from cached beliefs
  size_t merged_shards = 0;        ///< shards built from >= 2 old components
  size_t split_components = 0;     ///< old components split by the batch
  size_t cache_new_phrases = 0;    ///< phrases newly ingested by the cache
  size_t variables = 0;            ///< across dirty-shard graphs only
  size_t factors = 0;
  size_t warm_hints = 0;           ///< variables seeded from old beliefs
  /// Memoized candidate-generation lookups this batch (ProblemCache):
  /// a healthy incremental batch is hit-dominated — misses only for
  /// genuinely new surfaces. A miss-heavy steady state is an
  /// incremental-ingestion regression (jocl_stream reports these per
  /// batch for CI visibility).
  size_t problem_cache_hits = 0;
  size_t problem_cache_misses = 0;
  /// True when the batch skipped the front-end entirely because the
  /// active set was unchanged (UpdateWeights re-inference): the persisted
  /// problem and partition were reused verbatim.
  bool frontend_reused = false;
  // ---- LBP kernel counters, summed over *dirty* shards only (clean
  // shards spend no kernel work — their beliefs come from the store) ----
  size_t message_updates = 0;  ///< factor message updates executed
  size_t residual_pops = 0;    ///< residual-queue pops (kResidual only)
  size_t sweeps_skipped = 0;   ///< sweeps' worth of updates not spent
};

/// \brief Long-lived incremental runtime over one dataset: the streaming
/// counterpart of `JoclRuntime::Infer` (ROADMAP: continuously-arriving
/// traffic; open KBs grow by ingestion batches).
///
/// A session holds the active triple set, an append-only `SignalCache`,
/// a memoized problem builder, and the solved beliefs of every connected
/// component it has inferred. `AddTriples` / `RemoveTriples` update the
/// active set, rebuild the (cheap, memoized) global problem, partition
/// it, and re-run inference **only over dirty shards** — components whose
/// triple set or local problem changed. Clean components are served from
/// the store; a batch that merges two components dirties just the merged
/// shard, and a removal that splits one restores its pre-merge components
/// from the store when they are still cached.
///
/// **Cold-restart equivalence.** The global problem is a deterministic
/// function of the active triple set (blocking statistics and candidate
/// generation are dataset-global, not subset-dependent), per-component
/// beliefs are a pure function of the local problem + weights, and the
/// decode runs globally. Hence, with `warm_start` off, a session that
/// reached an active set through *any* sequence of batches produces a
/// result byte-identical to one-shot `JoclRuntime::Infer` over that set
/// (asserted for K ∈ {1, 4, 16} ingestion batches in
/// `tests/session_test.cc`). Reuse is guarded by structural equality of
/// the cached local problem, never by a fingerprint, so the guarantee
/// survives global blocking-cap effects.
///
/// The decode stage stays global: cluster labels are globally dense, so
/// any "partial" decode would re-densify everything anyway, and decode is
/// orders of magnitude cheaper than the LBP it sits behind (see
/// BENCH_incremental.json). The expensive stage — per-shard graph build +
/// LBP — is what the dirty-shard restriction avoids.
class JoclSession {
 public:
  /// \p dataset and \p signals must outlive the session. \p weights empty
  /// = Jocl::DefaultWeights(); weights stay fixed across ingestion
  /// batches (cached beliefs are only valid for the weights that produced
  /// them) and change only through UpdateWeights, which invalidates the
  /// belief store wholesale.
  JoclSession(const Dataset* dataset, const SignalBundle* signals,
              JoclOptions options = {}, SessionOptions session = {},
              std::vector<double> weights = {});

  /// Ingests a batch of dataset triple indices (already-active and
  /// duplicate ids are ignored) and re-infers dirty shards. The updated
  /// result is available via result().
  Status AddTriples(const std::vector<size_t>& batch,
                    SessionStats* stats = nullptr);

  /// Retires a batch of dataset triple indices (inactive ids are
  /// ignored) and re-infers dirty shards.
  Status RemoveTriples(const std::vector<size_t>& batch,
                       SessionStats* stats = nullptr);

  /// Hot-swaps the session onto \p weights (empty =
  /// Jocl::DefaultWeights()): drops every cached component belief (they
  /// are only valid for the weights that produced them), re-infers the
  /// whole active set under the new weights, and fires the publish
  /// callback — the learn → infer → serve loop's last hop, letting a
  /// retrain reach a live `jocl_serve` store without restarting the
  /// session. Identical weights are a no-op (result and generation
  /// unchanged). With `warm_start` off, the refreshed state is
  /// byte-identical to a cold session built with \p weights from the
  /// start (tested in tests/learner_runtime_test.cc).
  Status UpdateWeights(std::vector<double> weights,
                       SessionStats* stats = nullptr);

  /// The current joint result over the active triple set. Valid after the
  /// first successful mutation; empty before.
  const JoclResult& result() const { return result_; }

  /// The current global problem (aligned with result()) — what serving-
  /// layer publishers index (`BuildCanonStore(session.problem(),
  /// session.result(), ...)`). Valid after the first successful mutation.
  const JoclProblem& problem() const { return problem_; }

  /// Monotonic count of successful mutations (the publication stamp).
  size_t generation() const { return generation_; }

  /// Invoked after every successful AddTriples / RemoveTriples, once the
  /// session's problem/result/stats are consistent — the publish hook the
  /// serving layer hangs snapshot emission and store swaps on. Runs on
  /// the mutating thread; keep it cheap relative to a batch (building +
  /// swapping a CanonStore is). Pass nullptr to clear.
  void SetPublishCallback(std::function<void(const JoclSession&)> callback) {
    publish_callback_ = std::move(callback);
  }

  /// The active dataset triple indices, ascending.
  const std::vector<size_t>& active_triples() const { return active_; }

  /// Solved components currently cached (includes stale ones retained for
  /// split-reuse).
  size_t cached_components() const { return store_.size(); }

  const JoclOptions& options() const { return options_; }
  const SessionOptions& session_options() const { return session_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  /// A solved connected component: the exact local problem it was solved
  /// for (the reuse guard) and its beliefs in local indexing.
  struct SolvedComponent {
    JoclProblem problem;
    ShardBeliefs beliefs;
    size_t last_used = 0;  ///< generation stamp for stale eviction
  };

  /// Delta rebuild + delta partition + dirty-shard inference + global
  /// decode. \p added / \p removed are the batch's disjoint sorted triple
  /// ids (both empty = weights-only refresh over the unchanged set).
  Status Refresh(const std::vector<size_t>& added,
                 const std::vector<size_t>& removed, SessionStats* stats);

  const Dataset* dataset_;
  const SignalBundle* signals_;
  JoclOptions options_;
  SessionOptions session_;
  std::vector<double> weights_;

  std::vector<size_t> active_;  ///< sorted, deduplicated
  SignalCache cache_;           ///< append-only, spans all batches
  ProblemCache problem_cache_;  ///< memoized candidate generation

  /// The O(Δ) front-end pair (lazily constructed on the first batch;
  /// null when `incremental_frontend` is off or unsupported).
  std::unique_ptr<ProblemBuilder> builder_;
  std::unique_ptr<IncrementalPartitioner> partitioner_;
  /// Whether the previous non-reuse batch truncated the pair lists. A
  /// truncating batch stores shard bodies cut by a *global* similarity
  /// rank, so the provably-clean skip must stand down until one full
  /// non-truncating batch has re-verified every shard.
  bool prev_overflow_ = false;

  JoclProblem problem_;  ///< current global problem
  JoclBeliefs beliefs_;  ///< current global beliefs
  JoclResult result_;    ///< current decoded result

  /// Solved components keyed by their sorted dataset-triple-id list.
  std::map<std::vector<size_t>, SolvedComponent> store_;
  /// The previous partition's component triple sets (delta baseline).
  std::vector<std::vector<size_t>> previous_components_;
  size_t generation_ = 0;
  std::function<void(const JoclSession&)> publish_callback_;
};

}  // namespace jocl

#endif  // JOCL_CORE_SESSION_H_
