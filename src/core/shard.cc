#include "core/shard.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "cluster/union_find.h"
#include "util/logging.h"

namespace jocl {
namespace {

/// Scatters one role's pairs onto the shards owning them (the shard of
/// the representative triple of pair.a) in one global-order pass, so each
/// shard's pair list is a subsequence of the global order.
void ScatterPairs(const std::vector<SurfacePair>& pairs,
                  const std::vector<size_t>& representative,
                  const std::vector<size_t>& shard_of_triple,
                  const std::vector<std::unordered_map<size_t, size_t>>& g2l,
                  std::vector<SurfacePair> JoclProblem::*local_pairs,
                  std::vector<size_t> ProblemShard::*pair_map,
                  std::vector<ProblemShard>* shards) {
  for (size_t p = 0; p < pairs.size(); ++p) {
    size_t shard_id = shard_of_triple[representative[pairs[p].a]];
    ProblemShard& shard = (*shards)[shard_id];
    SurfacePair local = pairs[p];
    local.a = g2l[shard_id].at(pairs[p].a);
    local.b = g2l[shard_id].at(pairs[p].b);
    (shard.problem.*local_pairs).push_back(local);
    (shard.*pair_map).push_back(p);
  }
}

/// Builds one role of a shard's local problem: surfaces in ascending
/// global-id order, per-triple surface indices, first-local-mention
/// representatives, and copied candidate lists.
template <typename Candidate>
void BuildRole(const ProblemShard& shard,
               const std::vector<std::string>& surfaces,
               const std::vector<size_t>& of_triple,
               const std::vector<std::vector<Candidate>>& candidates,
               std::vector<std::string>* local_surfaces,
               std::vector<size_t>* local_of, std::vector<size_t>* local_rep,
               std::vector<size_t>* surface_map,
               std::vector<std::vector<Candidate>>* local_candidates,
               std::unordered_map<size_t, size_t>* g2l) {
  std::vector<size_t> globals;
  globals.reserve(shard.triple_map.size());
  for (size_t t : shard.triple_map) globals.push_back(of_triple[t]);
  std::vector<size_t> distinct = globals;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  surface_map->assign(distinct.begin(), distinct.end());
  local_surfaces->reserve(distinct.size());
  local_candidates->reserve(distinct.size());
  for (size_t global : distinct) {
    g2l->emplace(global, local_surfaces->size());
    local_surfaces->push_back(surfaces[global]);
    local_candidates->push_back(candidates[global]);
  }
  local_of->reserve(globals.size());
  local_rep->assign(distinct.size(), static_cast<size_t>(-1));
  for (size_t t = 0; t < globals.size(); ++t) {
    size_t local = g2l->at(globals[t]);
    local_of->push_back(local);
    if ((*local_rep)[local] == static_cast<size_t>(-1)) {
      (*local_rep)[local] = t;
    }
  }
}

}  // namespace

std::vector<size_t> PackWeightedItems(const std::vector<size_t>& weights,
                                      size_t bins) {
  const size_t n = weights.size();
  std::vector<size_t> bin_of(n);
  if (bins == 0 || bins >= n) {
    std::iota(bin_of.begin(), bin_of.end(), 0);
    return bin_of;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<size_t> bin_weight(bins, 0);
  for (size_t item : order) {
    size_t lightest = 0;
    for (size_t bin = 1; bin < bins; ++bin) {
      if (bin_weight[bin] < bin_weight[lightest]) lightest = bin;
    }
    bin_of[item] = lightest;
    bin_weight[lightest] += weights[item];
  }
  return bin_of;
}

ShardPlan PartitionProblem(const JoclProblem& problem, size_t max_shards) {
  const size_t n_triples = problem.triples.size();

  // Union-find over triples: a pair variable joins the representative
  // triples of its two surfaces (its consistency factors attach there;
  // everything else a pair touches follows transitively).
  UnionFind uf(n_triples);
  auto link_pairs = [&](const std::vector<SurfacePair>& pairs,
                        const std::vector<size_t>& representative) {
    for (const auto& pair : pairs) {
      uf.Union(representative[pair.a], representative[pair.b]);
    }
  };
  link_pairs(problem.subject_pairs, problem.subject_rep);
  link_pairs(problem.predicate_pairs, problem.predicate_rep);
  link_pairs(problem.object_pairs, problem.object_rep);

  // Components in first-appearance order over triples.
  std::unordered_map<size_t, size_t> comp_of_root;
  std::vector<size_t> comp_of_triple(n_triples);
  std::vector<size_t> comp_weight;  // triples per component
  for (size_t t = 0; t < n_triples; ++t) {
    auto [it, inserted] = comp_of_root.emplace(uf.Find(t), comp_weight.size());
    if (inserted) comp_weight.push_back(0);
    comp_of_triple[t] = it->second;
    ++comp_weight[it->second];
  }
  const size_t n_components = comp_weight.size();

  ShardPlan plan;
  plan.component_count = n_components;
  const size_t n_shards =
      (max_shards == 0 || max_shards >= n_components) ? n_components
                                                      : max_shards;
  std::vector<size_t> shard_of_comp = PackWeightedItems(comp_weight, n_shards);
  plan.shards.resize(n_shards);

  std::vector<size_t> shard_of_triple(n_triples);
  for (size_t t = 0; t < n_triples; ++t) {
    shard_of_triple[t] = shard_of_comp[comp_of_triple[t]];
    ProblemShard& shard = plan.shards[shard_of_triple[t]];
    shard.triple_map.push_back(t);  // ascending by construction
    shard.problem.triples.push_back(problem.triples[t]);
  }

  // Local problems, one role at a time.
  std::vector<std::unordered_map<size_t, size_t>> subject_g2l(n_shards);
  std::vector<std::unordered_map<size_t, size_t>> predicate_g2l(n_shards);
  std::vector<std::unordered_map<size_t, size_t>> object_g2l(n_shards);
  for (size_t s = 0; s < n_shards; ++s) {
    ProblemShard& shard = plan.shards[s];
    JoclProblem& local = shard.problem;
    BuildRole(shard, problem.subject_surfaces, problem.subject_of,
              problem.subject_candidates, &local.subject_surfaces,
              &local.subject_of, &local.subject_rep,
              &shard.subject_surface_map, &local.subject_candidates,
              &subject_g2l[s]);
    BuildRole(shard, problem.predicate_surfaces, problem.predicate_of,
              problem.predicate_candidates, &local.predicate_surfaces,
              &local.predicate_of, &local.predicate_rep,
              &shard.predicate_surface_map, &local.predicate_candidates,
              &predicate_g2l[s]);
    BuildRole(shard, problem.object_surfaces, problem.object_of,
              problem.object_candidates, &local.object_surfaces,
              &local.object_of, &local.object_rep,
              &shard.object_surface_map, &local.object_candidates,
              &object_g2l[s]);
  }

  ScatterPairs(problem.subject_pairs, problem.subject_rep, shard_of_triple,
               subject_g2l, &JoclProblem::subject_pairs,
               &ProblemShard::subject_pair_map, &plan.shards);
  ScatterPairs(problem.predicate_pairs, problem.predicate_rep,
               shard_of_triple, predicate_g2l, &JoclProblem::predicate_pairs,
               &ProblemShard::predicate_pair_map, &plan.shards);
  ScatterPairs(problem.object_pairs, problem.object_rep, shard_of_triple,
               object_g2l, &JoclProblem::object_pairs,
               &ProblemShard::object_pair_map, &plan.shards);

  JOCL_LOG(kDebug) << "partition: " << n_triples << " triples -> "
                   << n_components << " components in " << n_shards
                   << " shards";
  return plan;
}

ShardDelta ClassifyShardDelta(
    const ShardPlan& plan,
    const std::vector<std::vector<size_t>>& previous_components,
    const std::vector<size_t>& changed_triples) {
  std::unordered_map<size_t, size_t> prev_comp_of;  // dataset triple id
  for (size_t c = 0; c < previous_components.size(); ++c) {
    for (size_t t : previous_components[c]) prev_comp_of.emplace(t, c);
  }
  const std::unordered_set<size_t> changed(changed_triples.begin(),
                                           changed_triples.end());

  ShardDelta delta;
  delta.states.resize(plan.shards.size());
  // Per previous component: how many of its triples survive into the new
  // plan, and how many distinct shards they landed in.
  std::vector<size_t> comp_survivors(previous_components.size(), 0);
  std::vector<size_t> comp_last_shard(previous_components.size(),
                                      static_cast<size_t>(-1));
  std::vector<size_t> comp_shard_count(previous_components.size(), 0);

  for (size_t s = 0; s < plan.shards.size(); ++s) {
    const std::vector<size_t>& triples = plan.shards[s].problem.triples;
    size_t known = 0;                 // triples with a previous home
    std::vector<size_t> comps_seen;   // distinct previous homes (usually 1)
    bool touched = false;
    for (size_t t : triples) {
      if (changed.count(t) > 0) touched = true;
      auto it = prev_comp_of.find(t);
      if (it == prev_comp_of.end()) {
        touched = true;  // brand-new triple
        continue;
      }
      ++known;
      ++comp_survivors[it->second];
      if (comp_last_shard[it->second] != s) {
        comp_last_shard[it->second] = s;
        ++comp_shard_count[it->second];
      }
      if (std::find(comps_seen.begin(), comps_seen.end(), it->second) ==
          comps_seen.end()) {
        comps_seen.push_back(it->second);
      }
    }
    ShardDeltaState state;
    if (comps_seen.empty()) {
      state = ShardDeltaState::kNew;
    } else if (comps_seen.size() > 1) {
      state = ShardDeltaState::kMerged;
      ++delta.merged;
    } else if (known < previous_components[comps_seen.front()].size()) {
      state = ShardDeltaState::kSplit;
    } else if (touched || known < triples.size()) {
      state = ShardDeltaState::kTouched;
    } else {
      state = ShardDeltaState::kClean;
    }
    if (state != ShardDeltaState::kClean) ++delta.dirty;
    delta.states[s] = state;
  }
  for (size_t c = 0; c < previous_components.size(); ++c) {
    // A component split when its survivors span several shards, or when a
    // removal took some of its triples while the rest stayed together.
    if (comp_shard_count[c] >= 2 ||
        (comp_survivors[c] > 0 &&
         comp_survivors[c] < previous_components[c].size())) {
      ++delta.split;
    }
  }
  return delta;
}

}  // namespace jocl
