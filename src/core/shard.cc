#include "core/shard.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "cluster/union_find.h"
#include "util/logging.h"

namespace jocl {
namespace {

/// Local surface index of a global surface id within a shard's sorted
/// surface map (the map is strictly increasing, so binary search replaces
/// the eager path's g2l hash without changing any value).
size_t LocalIndexOf(const std::vector<size_t>& surface_map, size_t global) {
  return static_cast<size_t>(
      std::lower_bound(surface_map.begin(), surface_map.end(), global) -
      surface_map.begin());
}

/// Distinct sorted global surface ids of one role over a shard's triples.
void FillSurfaceMap(const std::vector<size_t>& triple_map,
                    const std::vector<size_t>& of_triple,
                    std::vector<size_t>* surface_map) {
  surface_map->clear();
  surface_map->reserve(triple_map.size());
  for (size_t t : triple_map) surface_map->push_back(of_triple[t]);
  std::sort(surface_map->begin(), surface_map->end());
  surface_map->erase(std::unique(surface_map->begin(), surface_map->end()),
                     surface_map->end());
}

/// Completes one role of a lazily materialized shard: surfaces in
/// ascending global-id order, per-triple indices, first-local-mention
/// representatives, copied candidate lists.
template <typename Candidate>
void MaterializeRole(const std::vector<std::string>& surfaces,
                     const std::vector<size_t>& of_triple,
                     const std::vector<std::vector<Candidate>>& candidates,
                     const std::vector<size_t>& triple_map,
                     const std::vector<size_t>& surface_map,
                     std::vector<std::string>* local_surfaces,
                     std::vector<size_t>* local_of,
                     std::vector<size_t>* local_rep,
                     std::vector<std::vector<Candidate>>* local_candidates) {
  local_surfaces->reserve(surface_map.size());
  local_candidates->reserve(surface_map.size());
  for (size_t global : surface_map) {
    local_surfaces->push_back(surfaces[global]);
    local_candidates->push_back(candidates[global]);
  }
  local_of->reserve(triple_map.size());
  local_rep->assign(surface_map.size(), static_cast<size_t>(-1));
  for (size_t t = 0; t < triple_map.size(); ++t) {
    size_t local = LocalIndexOf(surface_map, of_triple[triple_map[t]]);
    local_of->push_back(local);
    if ((*local_rep)[local] == static_cast<size_t>(-1)) {
      (*local_rep)[local] = t;
    }
  }
}

/// One role of ShardMatchesCached: verifies the cached role against the
/// projection without materializing it.
template <typename Candidate, typename CandidateEqual>
bool RoleMatches(const std::vector<std::string>& surfaces,
                 const std::vector<size_t>& of_triple,
                 const std::vector<std::vector<Candidate>>& candidates,
                 const std::vector<size_t>& triple_map,
                 const std::vector<size_t>& surface_map,
                 const std::vector<std::string>& cached_surfaces,
                 const std::vector<size_t>& cached_of,
                 const std::vector<size_t>& cached_rep,
                 const std::vector<std::vector<Candidate>>& cached_candidates,
                 CandidateEqual&& candidate_equal) {
  if (cached_surfaces.size() != surface_map.size() ||
      cached_of.size() != triple_map.size() ||
      cached_rep.size() != surface_map.size() ||
      cached_candidates.size() != surface_map.size()) {
    return false;
  }
  for (size_t i = 0; i < surface_map.size(); ++i) {
    if (cached_surfaces[i] != surfaces[surface_map[i]]) return false;
    const auto& a = cached_candidates[i];
    const auto& b = candidates[surface_map[i]];
    if (a.size() != b.size()) return false;
    for (size_t c = 0; c < a.size(); ++c) {
      if (!candidate_equal(a[c], b[c])) return false;
    }
  }
  std::vector<uint8_t> seen(surface_map.size(), 0);
  for (size_t t = 0; t < triple_map.size(); ++t) {
    size_t local = LocalIndexOf(surface_map, of_triple[triple_map[t]]);
    if (cached_of[t] != local) return false;
    if (!seen[local]) {
      seen[local] = 1;
      if (cached_rep[local] != t) return false;
    }
  }
  return true;
}

bool PairsMatch(const std::vector<SurfacePair>& pairs,
                const std::vector<size_t>& pair_map,
                const std::vector<size_t>& surface_map,
                const std::vector<SurfacePair>& cached_pairs) {
  if (cached_pairs.size() != pair_map.size()) return false;
  for (size_t i = 0; i < pair_map.size(); ++i) {
    const SurfacePair& global = pairs[pair_map[i]];
    const SurfacePair& local = cached_pairs[i];
    if (local.a != LocalIndexOf(surface_map, global.a) ||
        local.b != LocalIndexOf(surface_map, global.b) ||
        local.idf != global.idf ||
        local.candidate_blocked != global.candidate_blocked) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<size_t> PackWeightedItems(const std::vector<size_t>& weights,
                                      size_t bins) {
  const size_t n = weights.size();
  std::vector<size_t> bin_of(n);
  if (bins == 0 || bins >= n) {
    std::iota(bin_of.begin(), bin_of.end(), 0);
    return bin_of;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return a < b;
  });
  std::vector<size_t> bin_weight(bins, 0);
  for (size_t item : order) {
    size_t lightest = 0;
    for (size_t bin = 1; bin < bins; ++bin) {
      if (bin_weight[bin] < bin_weight[lightest]) lightest = bin;
    }
    bin_of[item] = lightest;
    bin_weight[lightest] += weights[item];
  }
  return bin_of;
}

size_t ComputeProblemComponents(const JoclProblem& problem,
                                std::vector<size_t>* comp_of_triple,
                                std::vector<size_t>* comp_weight) {
  const size_t n_triples = problem.triples.size();

  // Union-find over triples: a pair variable joins the representative
  // triples of its two surfaces (its consistency factors attach there;
  // everything else a pair touches follows transitively).
  UnionFind uf(n_triples);
  auto link_pairs = [&](const std::vector<SurfacePair>& pairs,
                        const std::vector<size_t>& representative) {
    for (const auto& pair : pairs) {
      uf.Union(representative[pair.a], representative[pair.b]);
    }
  };
  link_pairs(problem.subject_pairs, problem.subject_rep);
  link_pairs(problem.predicate_pairs, problem.predicate_rep);
  link_pairs(problem.object_pairs, problem.object_rep);

  // Components in first-appearance order over triples.
  std::unordered_map<size_t, size_t> comp_of_root;
  comp_of_triple->assign(n_triples, 0);
  comp_weight->clear();
  for (size_t t = 0; t < n_triples; ++t) {
    auto [it, inserted] =
        comp_of_root.emplace(uf.Find(t), comp_weight->size());
    if (inserted) comp_weight->push_back(0);
    (*comp_of_triple)[t] = it->second;
    ++(*comp_weight)[it->second];
  }
  return comp_weight->size();
}

ShardPlan MaterializeShardPlan(const JoclProblem& problem,
                               const std::vector<size_t>& comp_of_triple,
                               const std::vector<size_t>& comp_weight,
                               size_t max_shards, bool lazy) {
  const size_t n_triples = problem.triples.size();
  const size_t n_components = comp_weight.size();

  ShardPlan plan;
  plan.component_count = n_components;
  const size_t n_shards =
      (max_shards == 0 || max_shards >= n_components) ? n_components
                                                      : max_shards;
  std::vector<size_t> shard_of_comp = PackWeightedItems(comp_weight, n_shards);
  plan.shards.resize(n_shards);

  // Exact reservations: the steady-state session calls this every batch
  // over thousands of mostly-singleton shards, where growth reallocation
  // churn would dominate the actual index writes.
  {
    std::vector<size_t> shard_triples(n_shards, 0);
    for (size_t c = 0; c < comp_weight.size(); ++c) {
      shard_triples[shard_of_comp[c]] += comp_weight[c];
    }
    for (size_t s = 0; s < n_shards; ++s) {
      plan.shards[s].triple_map.reserve(shard_triples[s]);
      plan.shards[s].problem.triples.reserve(shard_triples[s]);
    }
  }

  std::vector<size_t> shard_of_triple(n_triples);
  for (size_t t = 0; t < n_triples; ++t) {
    shard_of_triple[t] = shard_of_comp[comp_of_triple[t]];
    ProblemShard& shard = plan.shards[shard_of_triple[t]];
    shard.triple_map.push_back(t);  // ascending by construction
    shard.problem.triples.push_back(problem.triples[t]);
  }

  for (ProblemShard& shard : plan.shards) {
    FillSurfaceMap(shard.triple_map, problem.subject_of,
                   &shard.subject_surface_map);
    FillSurfaceMap(shard.triple_map, problem.predicate_of,
                   &shard.predicate_surface_map);
    FillSurfaceMap(shard.triple_map, problem.object_of,
                   &shard.object_surface_map);
  }

  // Pair maps in one global-order pass per role, so each shard's pair
  // list is a subsequence of the global order.
  auto scatter_pair_maps = [&](const std::vector<SurfacePair>& pairs,
                               const std::vector<size_t>& representative,
                               std::vector<size_t> ProblemShard::*pair_map) {
    std::vector<size_t> counts(n_shards, 0);
    for (const SurfacePair& pair : pairs) {
      ++counts[shard_of_triple[representative[pair.a]]];
    }
    for (size_t s = 0; s < n_shards; ++s) {
      (plan.shards[s].*pair_map).reserve(counts[s]);
    }
    for (size_t p = 0; p < pairs.size(); ++p) {
      size_t shard_id = shard_of_triple[representative[pairs[p].a]];
      (plan.shards[shard_id].*pair_map).push_back(p);
    }
  };
  scatter_pair_maps(problem.subject_pairs, problem.subject_rep,
                    &ProblemShard::subject_pair_map);
  scatter_pair_maps(problem.predicate_pairs, problem.predicate_rep,
                    &ProblemShard::predicate_pair_map);
  scatter_pair_maps(problem.object_pairs, problem.object_rep,
                    &ProblemShard::object_pair_map);

  if (!lazy) {
    for (ProblemShard& shard : plan.shards) {
      MaterializeShardProblem(problem, &shard);
    }
  }
  return plan;
}

void MaterializeShardProblem(const JoclProblem& problem, ProblemShard* shard) {
  JoclProblem& local = shard->problem;
  MaterializeRole(problem.subject_surfaces, problem.subject_of,
                  problem.subject_candidates, shard->triple_map,
                  shard->subject_surface_map, &local.subject_surfaces,
                  &local.subject_of, &local.subject_rep,
                  &local.subject_candidates);
  MaterializeRole(problem.predicate_surfaces, problem.predicate_of,
                  problem.predicate_candidates, shard->triple_map,
                  shard->predicate_surface_map, &local.predicate_surfaces,
                  &local.predicate_of, &local.predicate_rep,
                  &local.predicate_candidates);
  MaterializeRole(problem.object_surfaces, problem.object_of,
                  problem.object_candidates, shard->triple_map,
                  shard->object_surface_map, &local.object_surfaces,
                  &local.object_of, &local.object_rep,
                  &local.object_candidates);

  auto localize_pairs = [](const std::vector<SurfacePair>& pairs,
                           const std::vector<size_t>& pair_map,
                           const std::vector<size_t>& surface_map,
                           std::vector<SurfacePair>* local_pairs) {
    local_pairs->reserve(pair_map.size());
    for (size_t p : pair_map) {
      SurfacePair pair = pairs[p];
      pair.a = LocalIndexOf(surface_map, pair.a);
      pair.b = LocalIndexOf(surface_map, pair.b);
      local_pairs->push_back(pair);
    }
  };
  localize_pairs(problem.subject_pairs, shard->subject_pair_map,
                 shard->subject_surface_map, &local.subject_pairs);
  localize_pairs(problem.predicate_pairs, shard->predicate_pair_map,
                 shard->predicate_surface_map, &local.predicate_pairs);
  localize_pairs(problem.object_pairs, shard->object_pair_map,
                 shard->object_surface_map, &local.object_pairs);
}

bool ShardMatchesCached(const JoclProblem& problem, const ProblemShard& shard,
                        const JoclProblem& cached) {
  if (cached.triples != shard.problem.triples) return false;
  auto entity_equal = [](const EntityCandidate& a, const EntityCandidate& b) {
    return a.id == b.id && a.popularity == b.popularity;
  };
  auto relation_equal = [](const RelationCandidate& a,
                           const RelationCandidate& b) {
    return a.id == b.id && a.score == b.score;
  };
  return RoleMatches(problem.subject_surfaces, problem.subject_of,
                     problem.subject_candidates, shard.triple_map,
                     shard.subject_surface_map, cached.subject_surfaces,
                     cached.subject_of, cached.subject_rep,
                     cached.subject_candidates, entity_equal) &&
         RoleMatches(problem.predicate_surfaces, problem.predicate_of,
                     problem.predicate_candidates, shard.triple_map,
                     shard.predicate_surface_map, cached.predicate_surfaces,
                     cached.predicate_of, cached.predicate_rep,
                     cached.predicate_candidates, relation_equal) &&
         RoleMatches(problem.object_surfaces, problem.object_of,
                     problem.object_candidates, shard.triple_map,
                     shard.object_surface_map, cached.object_surfaces,
                     cached.object_of, cached.object_rep,
                     cached.object_candidates, entity_equal) &&
         PairsMatch(problem.subject_pairs, shard.subject_pair_map,
                    shard.subject_surface_map, cached.subject_pairs) &&
         PairsMatch(problem.predicate_pairs, shard.predicate_pair_map,
                    shard.predicate_surface_map, cached.predicate_pairs) &&
         PairsMatch(problem.object_pairs, shard.object_pair_map,
                    shard.object_surface_map, cached.object_pairs);
}

ShardPlan PartitionProblem(const JoclProblem& problem, size_t max_shards) {
  std::vector<size_t> comp_of_triple;
  std::vector<size_t> comp_weight;
  const size_t n_components =
      ComputeProblemComponents(problem, &comp_of_triple, &comp_weight);
  ShardPlan plan = MaterializeShardPlan(problem, comp_of_triple, comp_weight,
                                        max_shards, /*lazy=*/false);
  JOCL_LOG(kDebug) << "partition: " << problem.triples.size()
                   << " triples -> " << n_components << " components in "
                   << plan.shards.size() << " shards";
  return plan;
}

// ---- IncrementalPartitioner -------------------------------------------------

namespace {

uint64_t EdgeKey(size_t u, size_t v) {
  uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  return (lo << 32) | hi;
}

}  // namespace

IncrementalPartitioner::IncrementalPartitioner(size_t dataset_triples)
    : base_(dataset_triples) {}

void IncrementalPartitioner::EnsureNode(size_t node) {
  if (node < parent_.size()) return;
  size_t old = parent_.size();
  parent_.resize(node + 1);
  for (size_t i = old; i <= node; ++i) parent_[i] = i;
  active_.resize(node + 1, 0);
  rep_of_.resize(node + 1, FrontEndDelta::kRetired);
}

size_t IncrementalPartitioner::Find(size_t node) {
  size_t root = node;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[node] != root) {
    size_t next = parent_[node];
    parent_[node] = root;
    node = next;
  }
  return root;
}

void IncrementalPartitioner::Activate(size_t node) {
  EnsureNode(node);
  if (active_[node]) return;
  active_[node] = 1;
  parent_[node] = node;
  Group& group = groups_[node];
  group.members.assign(1, node);
  group.edges.clear();
}

void IncrementalPartitioner::AddEdge(size_t u, size_t v) {
  size_t ru = Find(u);
  size_t rv = Find(v);
  if (ru == rv) {
    groups_[ru].edges.emplace_back(u, v);
    return;
  }
  Group& gu = groups_[ru];
  Group& gv = groups_[rv];
  // Small-to-large: the lighter component's lists fold into the heavier's.
  size_t big = gu.members.size() >= gv.members.size() ? ru : rv;
  size_t small = big == ru ? rv : ru;
  Group& gb = groups_[big];
  Group& gs = groups_[small];
  parent_[small] = big;
  gb.members.insert(gb.members.end(), gs.members.begin(), gs.members.end());
  gb.edges.insert(gb.edges.end(), gs.edges.begin(), gs.edges.end());
  gb.edges.emplace_back(u, v);
  groups_.erase(small);
}

void IncrementalPartitioner::Apply(const FrontEndDelta& delta) {
  // ---- phase 1: collect retired edges and nodes ---------------------------
  std::unordered_set<uint64_t> dead_edges;
  std::vector<size_t> deactivate;
  for (size_t role = 0; role < 3; ++role) {
    for (const auto& event : delta.surface_events[role]) {
      size_t node = NodeOf(role, event.sid);
      if (node < parent_.size() && active_[node] &&
          rep_of_[node] != FrontEndDelta::kRetired &&
          rep_of_[node] != event.rep) {
        dead_edges.insert(EdgeKey(node, rep_of_[node]));
      }
      if (event.rep == FrontEndDelta::kRetired && node < parent_.size() &&
          active_[node]) {
        deactivate.push_back(node);
      }
    }
    for (uint64_t key : delta.pair_events[role].removed) {
      size_t a = NodeOf(role, static_cast<uint32_t>(key >> 32));
      size_t b = NodeOf(role, static_cast<uint32_t>(key & 0xffffffff));
      dead_edges.insert(EdgeKey(a, b));
    }
  }
  for (size_t t : delta.removed_triples) {
    if (t < parent_.size() && active_[t]) deactivate.push_back(t);
  }

  // ---- phase 2: dissolve + rebuild the affected components ----------------
  if (!dead_edges.empty() || !deactivate.empty()) {
    std::unordered_set<size_t> roots;
    for (uint64_t key : dead_edges) {
      size_t u = static_cast<size_t>(key >> 32);
      size_t v = static_cast<size_t>(key & 0xffffffff);
      if (u < parent_.size() && active_[u]) roots.insert(Find(u));
      if (v < parent_.size() && active_[v]) roots.insert(Find(v));
    }
    for (size_t node : deactivate) roots.insert(Find(node));

    std::vector<size_t> members;
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t root : roots) {
      auto it = groups_.find(root);
      if (it == groups_.end()) continue;
      members.insert(members.end(), it->second.members.begin(),
                     it->second.members.end());
      edges.insert(edges.end(), it->second.edges.begin(),
                   it->second.edges.end());
      groups_.erase(it);
    }
    for (size_t node : deactivate) active_[node] = 0;
    for (size_t node : members) {
      if (!active_[node]) continue;
      parent_[node] = node;
      Group& group = groups_[node];
      group.members.assign(1, node);
      group.edges.clear();
    }
    for (const auto& [u, v] : edges) {
      if (!active_[u] || !active_[v]) continue;
      if (dead_edges.count(EdgeKey(u, v)) > 0) continue;
      AddEdge(u, v);
    }
  }

  // ---- phase 3: additions -------------------------------------------------
  for (size_t t : delta.added_triples) {
    EnsureNode(t);
    Activate(t);
  }
  for (size_t role = 0; role < 3; ++role) {
    for (const auto& event : delta.surface_events[role]) {
      size_t node = NodeOf(role, event.sid);
      EnsureNode(node);
      if (event.rep == FrontEndDelta::kRetired) {
        rep_of_[node] = FrontEndDelta::kRetired;
        continue;
      }
      Activate(node);
      rep_of_[node] = event.rep;
      AddEdge(node, event.rep);
    }
    for (uint64_t key : delta.pair_events[role].added) {
      size_t a = NodeOf(role, static_cast<uint32_t>(key >> 32));
      size_t b = NodeOf(role, static_cast<uint32_t>(key & 0xffffffff));
      AddEdge(a, b);
    }
  }
}

size_t IncrementalPartitioner::Components(
    const std::vector<size_t>& active_triples,
    std::vector<size_t>* comp_of_triple, std::vector<size_t>* comp_weight) {
  comp_of_triple->assign(active_triples.size(), 0);
  comp_weight->clear();
  std::unordered_map<size_t, size_t> comp_of_root;
  comp_of_root.reserve(active_triples.size());
  for (size_t t = 0; t < active_triples.size(); ++t) {
    auto [it, inserted] =
        comp_of_root.emplace(Find(active_triples[t]), comp_weight->size());
    if (inserted) comp_weight->push_back(0);
    (*comp_of_triple)[t] = it->second;
    ++(*comp_weight)[it->second];
  }
  return comp_weight->size();
}

ShardDelta ClassifyShardDelta(
    const ShardPlan& plan,
    const std::vector<std::vector<size_t>>& previous_components,
    const std::vector<size_t>& changed_triples) {
  // Dataset triple ids are small dense integers, so flat arrays beat hash
  // maps here: this runs on every batch and sits on the partition clock.
  size_t max_id = 0;
  for (const auto& comp : previous_components) {
    for (size_t t : comp) max_id = std::max(max_id, t);
  }
  for (const auto& shard : plan.shards) {
    for (size_t t : shard.problem.triples) max_id = std::max(max_id, t);
  }
  for (size_t t : changed_triples) max_id = std::max(max_id, t);
  constexpr size_t kNoComp = static_cast<size_t>(-1);
  std::vector<size_t> prev_comp_of(max_id + 1, kNoComp);
  for (size_t c = 0; c < previous_components.size(); ++c) {
    for (size_t t : previous_components[c]) prev_comp_of[t] = c;
  }
  std::vector<uint8_t> changed(max_id + 1, 0);
  for (size_t t : changed_triples) {
    if (t <= max_id) changed[t] = 1;
  }

  ShardDelta delta;
  delta.states.resize(plan.shards.size());
  // Per previous component: how many of its triples survive into the new
  // plan, and how many distinct shards they landed in.
  std::vector<size_t> comp_survivors(previous_components.size(), 0);
  std::vector<size_t> comp_last_shard(previous_components.size(),
                                      static_cast<size_t>(-1));
  std::vector<size_t> comp_shard_count(previous_components.size(), 0);

  for (size_t s = 0; s < plan.shards.size(); ++s) {
    const std::vector<size_t>& triples = plan.shards[s].problem.triples;
    size_t known = 0;                 // triples with a previous home
    std::vector<size_t> comps_seen;   // distinct previous homes (usually 1)
    bool touched = false;
    for (size_t t : triples) {
      if (changed[t] != 0) touched = true;
      const size_t prev = prev_comp_of[t];
      if (prev == kNoComp) {
        touched = true;  // brand-new triple
        continue;
      }
      ++known;
      ++comp_survivors[prev];
      if (comp_last_shard[prev] != s) {
        comp_last_shard[prev] = s;
        ++comp_shard_count[prev];
      }
      if (std::find(comps_seen.begin(), comps_seen.end(), prev) ==
          comps_seen.end()) {
        comps_seen.push_back(prev);
      }
    }
    ShardDeltaState state;
    if (comps_seen.empty()) {
      state = ShardDeltaState::kNew;
    } else if (comps_seen.size() > 1) {
      state = ShardDeltaState::kMerged;
      ++delta.merged;
    } else if (known < previous_components[comps_seen.front()].size()) {
      state = ShardDeltaState::kSplit;
    } else if (touched || known < triples.size()) {
      state = ShardDeltaState::kTouched;
    } else {
      state = ShardDeltaState::kClean;
    }
    if (state != ShardDeltaState::kClean) ++delta.dirty;
    delta.states[s] = state;
  }
  for (size_t c = 0; c < previous_components.size(); ++c) {
    // A component split when its survivors span several shards, or when a
    // removal took some of its triples while the rest stayed together.
    if (comp_shard_count[c] >= 2 ||
        (comp_survivors[c] > 0 &&
         comp_survivors[c] < previous_components[c].size())) {
      ++delta.split;
    }
  }
  return delta;
}

}  // namespace jocl
