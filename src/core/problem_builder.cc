#include "core/problem_builder.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "text/tokenizer.h"
#include "util/worker_pool.h"

namespace jocl {
namespace {

uint64_t PackPair(uint32_t lo, uint32_t hi) {
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

/// Non-stop tokens of a phrase with multiplicity, first-occurrence order.
/// Scratch blocking pushes the surface into a token's bucket once per
/// *occurrence* (Tokenize keeps duplicates), and the bucket-size cap
/// counts those occurrences — so multiplicity is part of the contract.
std::vector<std::pair<std::string, uint32_t>> GroupTokens(
    const std::string& phrase) {
  std::vector<std::pair<std::string, uint32_t>> grouped;
  const auto& stop = StopWords();
  std::unordered_map<std::string, size_t> at;
  for (auto& token : Tokenize(phrase)) {
    if (stop.count(token) > 0) continue;
    auto [it, inserted] = at.emplace(token, grouped.size());
    if (inserted) {
      grouped.emplace_back(std::move(token), 1);
    } else {
      ++grouped[it->second].second;
    }
  }
  return grouped;
}

}  // namespace

ProblemBuilder::ProblemBuilder(const Dataset* dataset,
                               const SignalBundle* signals,
                               const ProblemOptions& options,
                               ProblemCache* cache)
    : dataset_(dataset),
      signals_(signals),
      options_(options),
      cache_(cache) {
  sid_of_triple_.resize(dataset_->okb.size());
  triple_interned_.resize(dataset_->okb.size(), 0);
}

bool ProblemBuilder::Supports(const ProblemOptions& options) {
  // Embedding-neighbor blocking admits pairs under a global emission cap
  // (max_emb_pairs) scanned in surface-index order — admission is not a
  // per-pair property, so the incremental bookkeeping cannot model it.
  return !(options.side_info_blocking &&
           options.emb_blocking_threshold > 0.0);
}

uint32_t ProblemBuilder::InternNp(const std::string& phrase) {
  auto it = np_index_.find(phrase);
  if (it != np_index_.end()) return it->second;
  uint32_t sid = static_cast<uint32_t>(np_meta_.size());
  np_meta_.emplace_back();
  NpMeta& meta = np_meta_.back();
  meta.surface = phrase;
  if (cache_ != nullptr) {
    auto cached = cache_->entity_candidates.find(phrase);
    if (cached != cache_->entity_candidates.end()) {
      meta.candidates = cached->second;
      meta.in_problem_cache = true;
    }
  }
  np_index_.emplace(phrase, sid);
  for (size_t role : {kSubject, kObject}) {
    roles_[role].mentions.emplace_back();
    roles_[role].rank_of.push_back(0);
    roles_[role].rank_epoch.push_back(0);
  }
  new_np_sids_.push_back(sid);
  return sid;
}

uint32_t ProblemBuilder::InternRp(const std::string& phrase) {
  auto it = rp_index_.find(phrase);
  if (it != rp_index_.end()) return it->second;
  uint32_t sid = static_cast<uint32_t>(rp_meta_.size());
  rp_meta_.emplace_back();
  RpMeta& meta = rp_meta_.back();
  meta.surface = phrase;
  if (cache_ != nullptr) {
    auto cached = cache_->relation_candidates.find(phrase);
    if (cached != cache_->relation_candidates.end()) {
      meta.candidates = cached->second;
      meta.in_problem_cache = true;
    }
  }
  rp_index_.emplace(phrase, sid);
  roles_[kPredicate].mentions.emplace_back();
  roles_[kPredicate].rank_of.push_back(0);
  roles_[kPredicate].rank_epoch.push_back(0);
  new_rp_sids_.push_back(sid);
  return sid;
}

void ProblemBuilder::EnsureTripleInterned(size_t t) {
  if (triple_interned_[t]) return;
  const OieTriple& triple = dataset_->okb.triple(t);
  sid_of_triple_[t] = {InternNp(triple.subject), InternRp(triple.predicate),
                       InternNp(triple.object)};
  triple_interned_[t] = 1;
}

void ProblemBuilder::PrepareNewSurfaces(size_t threads) {
  // Fan the per-surface pure work (tokenize, PPDB lookup, candidate
  // generation) out on the pool into disjoint meta slots; everything
  // order-sensitive (cache-map fills, blocking-id extraction) happens on
  // the calling thread afterwards, in discovery order.
  const size_t n_np = new_np_sids_.size();
  const size_t total = n_np + new_rp_sids_.size();
  if (total == 0) return;
  const bool want_ppdb =
      options_.side_info_blocking && signals_->ppdb != nullptr;
  RunOnPool(
      total, threads, [](size_t) { return size_t{1}; },
      [&](size_t i) {
        if (i < n_np) {
          NpMeta& meta = np_meta_[new_np_sids_[i]];
          meta.tokens = GroupTokens(meta.surface);
          if (want_ppdb) {
            meta.ppdb_rep = signals_->ppdb->Representative(meta.surface);
          }
          if (!meta.in_problem_cache) {
            meta.candidates = dataset_->ckb.EntityCandidates(
                meta.surface, options_.max_candidates);
          }
        } else {
          RpMeta& meta = rp_meta_[new_rp_sids_[i - n_np]];
          meta.tokens = GroupTokens(meta.surface);
          if (want_ppdb) {
            meta.ppdb_rep = signals_->ppdb->Representative(meta.surface);
          }
          if (!meta.in_problem_cache) {
            meta.candidates = dataset_->ckb.RelationCandidates(
                meta.surface, options_.max_candidates);
          }
        }
      });
  for (uint32_t sid : new_np_sids_) {
    NpMeta& meta = np_meta_[sid];
    size_t top = std::min(options_.blocking_candidates,
                          meta.candidates.size());
    meta.blocking_ids.reserve(top);
    for (size_t c = 0; c < top; ++c) {
      meta.blocking_ids.push_back(meta.candidates[c].id);
    }
    if (cache_ != nullptr && !meta.in_problem_cache) {
      cache_->entity_candidates.emplace(meta.surface, meta.candidates);
    }
  }
  for (uint32_t sid : new_rp_sids_) {
    RpMeta& meta = rp_meta_[sid];
    if (cache_ != nullptr && !meta.in_problem_cache) {
      cache_->relation_candidates.emplace(meta.surface, meta.candidates);
    }
  }
}

void ProblemBuilder::BumpRef(RoleState& state, uint32_t a, uint32_t b,
                             int which, int32_t delta) {
  if (a == b || delta == 0) return;
  uint32_t lo = std::min(a, b);
  uint32_t hi = std::max(a, b);
  auto [it, inserted] = state.pair_index.emplace(PackPair(lo, hi),
                                                 state.slab.size());
  if (inserted) {
    state.slab.emplace_back();
    state.slab.back().lo = lo;
    state.slab.back().hi = hi;
  }
  PairRec& rec = state.slab[it->second];
  rec.refs[which] += delta;
  if (!rec.in_live &&
      (rec.refs[0] > 0 || rec.refs[1] > 0 || rec.refs[2] > 0 ||
       rec.admitted_prev)) {
    rec.in_live = true;
    state.live.push_back(it->second);
  }
}

void ProblemBuilder::RescoreBucket(RoleState& state, const Bucket& bucket,
                                   int which, int32_t sign) {
  std::vector<std::pair<uint32_t, uint32_t>> members(bucket.occ.begin(),
                                                     bucket.occ.end());
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      BumpRef(state, members[i].first, members[j].first, which,
              sign * static_cast<int32_t>(members[i].second *
                                          members[j].second));
    }
  }
}

void ProblemBuilder::AddToBucket(RoleState& state, Bucket& bucket,
                                 uint32_t sid, uint32_t k, int which) {
  const size_t cap = options_.max_block_size;
  const bool was_valid = bucket.size <= cap;
  const size_t new_size = bucket.size + k;
  const bool now_valid = new_size <= cap;
  if (was_valid && now_valid) {
    for (const auto& [other, occ] : bucket.occ) {
      BumpRef(state, sid, other, which,
              static_cast<int32_t>(k * occ));
    }
  } else if (was_valid && !now_valid) {
    // The bucket crosses the blocking cap: its whole pairwise
    // contribution disappears, not just the new member's.
    RescoreBucket(state, bucket, which, -1);
  }
  bucket.occ[sid] += k;
  bucket.size = new_size;
}

void ProblemBuilder::RemoveFromBucket(RoleState& state, Bucket& bucket,
                                      uint32_t sid, int which) {
  auto it = bucket.occ.find(sid);
  if (it == bucket.occ.end()) return;
  const size_t cap = options_.max_block_size;
  const uint32_t k = it->second;
  const bool was_valid = bucket.size <= cap;
  bucket.occ.erase(it);
  bucket.size -= k;
  const bool now_valid = bucket.size <= cap;
  if (was_valid) {
    for (const auto& [other, occ] : bucket.occ) {
      BumpRef(state, sid, other, which,
              -static_cast<int32_t>(k * occ));
    }
  } else if (now_valid) {
    // Crossed back under the cap: the remaining membership's pairwise
    // contribution comes (back) into force.
    RescoreBucket(state, bucket, which, +1);
  }
}

void ProblemBuilder::ActivateSurface(size_t role, uint32_t sid) {
  RoleState& state = roles_[role];
  if (IsNpRole(role)) {
    const NpMeta& meta = np_meta_[sid];
    for (const auto& [token, count] : meta.tokens) {
      AddToBucket(state, state.token_buckets[token], sid, count, kTokenRefs);
    }
    if (options_.side_info_blocking) {
      if (meta.ppdb_rep.has_value()) {
        AddToBucket(state, state.ppdb_buckets[*meta.ppdb_rep], sid, 1,
                    kPpdbRefs);
      }
      for (int64_t id : meta.blocking_ids) {
        AddToBucket(state, state.cand_buckets[id], sid, 1, kCandRefs);
      }
    }
  } else {
    const RpMeta& meta = rp_meta_[sid];
    for (const auto& [token, count] : meta.tokens) {
      AddToBucket(state, state.token_buckets[token], sid, count, kTokenRefs);
    }
    // No candidate-overlap blocking for predicates (see BuildProblem).
    if (options_.side_info_blocking && meta.ppdb_rep.has_value()) {
      AddToBucket(state, state.ppdb_buckets[*meta.ppdb_rep], sid, 1,
                  kPpdbRefs);
    }
  }
}

void ProblemBuilder::DeactivateSurface(size_t role, uint32_t sid) {
  RoleState& state = roles_[role];
  auto drop = [&](auto& bucket_map, const auto& key, int which) {
    auto it = bucket_map.find(key);
    if (it == bucket_map.end()) return;
    RemoveFromBucket(state, it->second, sid, which);
    if (it->second.size == 0) bucket_map.erase(it);
  };
  if (IsNpRole(role)) {
    const NpMeta& meta = np_meta_[sid];
    for (const auto& [token, count] : meta.tokens) {
      (void)count;
      drop(state.token_buckets, token, kTokenRefs);
    }
    if (options_.side_info_blocking) {
      if (meta.ppdb_rep.has_value()) {
        drop(state.ppdb_buckets, *meta.ppdb_rep, kPpdbRefs);
      }
      for (int64_t id : meta.blocking_ids) {
        drop(state.cand_buckets, id, kCandRefs);
      }
    }
  } else {
    const RpMeta& meta = rp_meta_[sid];
    for (const auto& [token, count] : meta.tokens) {
      (void)count;
      drop(state.token_buckets, token, kTokenRefs);
    }
    if (options_.side_info_blocking && meta.ppdb_rep.has_value()) {
      drop(state.ppdb_buckets, *meta.ppdb_rep, kPpdbRefs);
    }
  }
}

void ProblemBuilder::EmitRole(size_t role, const std::vector<size_t>& active,
                              size_t threads,
                              std::vector<std::string>* surfaces,
                              std::vector<size_t>* of,
                              std::vector<size_t>* rep,
                              std::vector<SurfacePair>* pairs,
                              FrontEndDelta* delta,
                              std::vector<uint32_t>* by_rank) {
  RoleState& state = roles_[role];

  // ---- first-appearance ranks over the active set (== BuildSurfaces) ----
  ++state.epoch;
  by_rank->clear();
  of->clear();
  of->reserve(active.size());
  rep->clear();
  for (size_t t = 0; t < active.size(); ++t) {
    uint32_t sid = sid_of_triple_[active[t]][role];
    if (state.rank_epoch[sid] != state.epoch) {
      state.rank_epoch[sid] = state.epoch;
      state.rank_of[sid] = static_cast<uint32_t>(by_rank->size());
      by_rank->push_back(sid);
      rep->push_back(t);
    }
    of->push_back(state.rank_of[sid]);
  }
  surfaces->clear();
  surfaces->reserve(by_rank->size());
  for (uint32_t sid : *by_rank) surfaces->push_back(SurfaceOf(role, sid));

  // ---- compact dead pair recs, collect missing similarities --------------
  std::vector<size_t> need_sim;
  for (size_t i = 0; i < state.live.size();) {
    PairRec& rec = state.slab[state.live[i]];
    if (rec.refs[0] <= 0 && rec.refs[1] <= 0 && rec.refs[2] <= 0) {
      if (rec.admitted_prev) {
        delta->pair_events[role].removed.push_back(PackPair(rec.lo, rec.hi));
        rec.admitted_prev = false;
      }
      rec.in_live = false;
      state.live[i] = state.live.back();
      state.live.pop_back();
      continue;
    }
    const bool lo_first = state.rank_of[rec.lo] < state.rank_of[rec.hi];
    if (std::isnan(lo_first ? rec.sim_lo_first : rec.sim_hi_first)) {
      need_sim.push_back(state.live[i]);
    }
    ++i;
  }

  // ---- parallel similarity fill (disjoint slots, deterministic) ----------
  const IdfTable& idf =
      role == kPredicate ? signals_->rp_idf : signals_->np_idf;
  RunOnPool(
      need_sim.size(), threads, [](size_t) { return size_t{1}; },
      [&](size_t n) {
        PairRec& rec = state.slab[need_sim[n]];
        const bool lo_first = state.rank_of[rec.lo] < state.rank_of[rec.hi];
        const std::string& first = SurfaceOf(role, lo_first ? rec.lo : rec.hi);
        const std::string& second =
            SurfaceOf(role, lo_first ? rec.hi : rec.lo);
        (lo_first ? rec.sim_lo_first : rec.sim_hi_first) =
            idf.Similarity(first, second);
      });

  // ---- admission + emission ----------------------------------------------
  pairs->clear();
  for (size_t idx : state.live) {
    PairRec& rec = state.slab[idx];
    const uint32_t rank_lo = state.rank_of[rec.lo];
    const uint32_t rank_hi = state.rank_of[rec.hi];
    const bool lo_first = rank_lo < rank_hi;
    const double sim = lo_first ? rec.sim_lo_first : rec.sim_hi_first;
    const bool token_ok =
        rec.refs[kTokenRefs] > 0 && sim >= options_.pair_threshold;
    const bool admitted =
        token_ok || rec.refs[kPpdbRefs] > 0 || rec.refs[kCandRefs] > 0;
    const bool blocked = !token_ok && rec.refs[kPpdbRefs] <= 0 &&
                         rec.refs[kCandRefs] > 0;
    if (admitted != rec.admitted_prev) {
      auto& events = admitted ? delta->pair_events[role].added
                              : delta->pair_events[role].removed;
      events.push_back(PackPair(rec.lo, rec.hi));
      rec.admitted_prev = admitted;
    } else if (admitted && blocked != rec.blocked_prev) {
      // Still admitted but the candidate-blocked tag flipped (a shared
      // bucket crossed the size cap): the emitted SurfacePair changed, so
      // announce it. The redundant edge re-add is a no-op for the
      // partitioner's connectivity; it exists so the session's
      // provably-clean shard skip sees the affected component as touched.
      delta->pair_events[role].added.push_back(PackPair(rec.lo, rec.hi));
    }
    if (admitted) {
      rec.blocked_prev = blocked;
      SurfacePair pair;
      pair.a = lo_first ? rank_lo : rank_hi;
      pair.b = lo_first ? rank_hi : rank_lo;
      pair.idf = sim;
      pair.candidate_blocked = blocked;
      pairs->push_back(pair);
    }
  }

  // ---- deterministic order; cap by similarity when oversized -------------
  // The similarity-rank sort only matters for picking the cap survivors;
  // under the cap the final (a, b) re-sort is a total order over unique
  // keys, so skipping the first sort cannot change the emitted list.
  if (pairs->size() > options_.max_pairs_per_role) {
    std::sort(pairs->begin(), pairs->end(),
              [](const SurfacePair& x, const SurfacePair& y) {
                if (x.idf != y.idf) return x.idf > y.idf;
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
    pairs->resize(options_.max_pairs_per_role);
    // Which pairs survive the cap depends on global similarity rank, so
    // the pair events above no longer describe the surviving set; the
    // caller must fall back to scratch connectivity this batch.
    delta->overflow = true;
  }
  std::sort(pairs->begin(), pairs->end(),
            [](const SurfacePair& x, const SurfacePair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
}

void ProblemBuilder::Apply(const std::vector<size_t>& added,
                           const std::vector<size_t>& removed,
                           const std::vector<size_t>& active, size_t threads,
                           JoclProblem* problem, FrontEndDelta* delta) {
  *problem = JoclProblem();
  *delta = FrontEndDelta();
  delta->added_triples = added;
  delta->removed_triples = removed;
  if (threads == 0) threads = 1;

  // Surface-event baseline: representative (min active mention) of every
  // surface touched this batch, snapshotted at first touch.
  std::unordered_map<uint32_t, size_t> old_rep[3];
  auto touch = [&](size_t role, uint32_t sid) {
    const auto& mentions = roles_[role].mentions[sid];
    old_rep[role].emplace(
        sid, mentions.empty() ? FrontEndDelta::kRetired : mentions.front());
  };

  // ---- removals -----------------------------------------------------------
  for (size_t t : removed) {
    const auto& sids = sid_of_triple_[t];
    for (size_t role = 0; role < 3; ++role) {
      uint32_t sid = sids[role];
      touch(role, sid);
      auto& mentions = roles_[role].mentions[sid];
      auto it = std::lower_bound(mentions.begin(), mentions.end(), t);
      if (it != mentions.end() && *it == t) mentions.erase(it);
      if (mentions.empty()) DeactivateSurface(role, sid);
    }
  }

  // ---- additions (bucket insertion deferred until metadata is ready) -----
  new_np_sids_.clear();
  new_rp_sids_.clear();
  std::vector<std::pair<size_t, uint32_t>> activations;
  for (size_t t : added) {
    EnsureTripleInterned(t);
    const auto& sids = sid_of_triple_[t];
    for (size_t role = 0; role < 3; ++role) {
      uint32_t sid = sids[role];
      touch(role, sid);
      auto& mentions = roles_[role].mentions[sid];
      if (mentions.empty()) activations.emplace_back(role, sid);
      if (mentions.empty() || mentions.back() < t) {
        mentions.push_back(t);  // batches arrive ascending: O(1) common case
      } else {
        mentions.insert(std::upper_bound(mentions.begin(), mentions.end(), t),
                        t);
      }
    }
  }

  PrepareNewSurfaces(threads);
  for (const auto& [role, sid] : activations) ActivateSurface(role, sid);

  // ---- surface events (sorted for deterministic delta bytes) -------------
  for (size_t role = 0; role < 3; ++role) {
    std::vector<uint32_t> touched;
    touched.reserve(old_rep[role].size());
    for (const auto& [sid, rep] : old_rep[role]) touched.push_back(sid);
    std::sort(touched.begin(), touched.end());
    for (uint32_t sid : touched) {
      const auto& mentions = roles_[role].mentions[sid];
      size_t now =
          mentions.empty() ? FrontEndDelta::kRetired : mentions.front();
      if (now != old_rep[role][sid]) {
        delta->surface_events[role].push_back({sid, now});
      }
    }
  }

  // ---- emission -----------------------------------------------------------
  problem->triples = active;
  std::vector<uint32_t> subject_rank, object_rank, predicate_rank;
  EmitRole(kSubject, active, threads, &problem->subject_surfaces,
           &problem->subject_of, &problem->subject_rep,
           &problem->subject_pairs, delta, &subject_rank);
  EmitRole(kObject, active, threads, &problem->object_surfaces,
           &problem->object_of, &problem->object_rep, &problem->object_pairs,
           delta, &object_rank);
  EmitRole(kPredicate, active, threads, &problem->predicate_surfaces,
           &problem->predicate_of, &problem->predicate_rep,
           &problem->predicate_pairs, delta, &predicate_rank);

  // ---- candidates + ProblemCache counter mirror ---------------------------
  // Scratch consult order is subject surfaces, then object, then
  // predicate (entity memo shared between the NP roles). Counters are
  // bumped here, on the calling thread, per consulted surface — the
  // parallel prefill above cannot double-count a miss.
  problem->subject_candidates.reserve(subject_rank.size());
  for (uint32_t sid : subject_rank) {
    NpMeta& meta = np_meta_[sid];
    if (cache_ != nullptr) {
      if (meta.in_problem_cache) {
        ++cache_->hits;
      } else {
        ++cache_->misses;
        meta.in_problem_cache = true;
      }
    }
    problem->subject_candidates.push_back(meta.candidates);
  }
  problem->object_candidates.reserve(object_rank.size());
  for (uint32_t sid : object_rank) {
    NpMeta& meta = np_meta_[sid];
    if (cache_ != nullptr) {
      if (meta.in_problem_cache) {
        ++cache_->hits;
      } else {
        ++cache_->misses;
        meta.in_problem_cache = true;
      }
    }
    problem->object_candidates.push_back(meta.candidates);
  }
  problem->predicate_candidates.reserve(predicate_rank.size());
  for (uint32_t sid : predicate_rank) {
    RpMeta& meta = rp_meta_[sid];
    if (cache_ != nullptr) {
      if (meta.in_problem_cache) {
        ++cache_->hits;
      } else {
        ++cache_->misses;
        meta.in_problem_cache = true;
      }
    }
    problem->predicate_candidates.push_back(meta.candidates);
  }
}

}  // namespace jocl
