#ifndef JOCL_CORE_DECODE_H_
#define JOCL_CORE_DECODE_H_

#include <cstddef>
#include <tuple>
#include <vector>

namespace jocl {

/// \brief A weighted undirected edge of the pair graph: two node ids plus
/// the model's same-meaning belief (marginal of `x = 1`).
using PairEdge = std::tuple<size_t, size_t, double>;

/// \brief Clusters a sparse pair graph of LBP marginals with conflict
/// vetoes (§3.5 applied at decode time).
///
/// Plain transitive closure over `x = 1` edges lets a handful of
/// confident-but-wrong edges chain everything into one giant cluster.
/// Instead, candidate edges (weight >= \p threshold) are processed in
/// decreasing confidence, and a merge of two clusters is vetoed when the
/// *observed* cross edges between them average below the threshold — a
/// merge most of the model's own pairwise beliefs contradict is rejected.
/// Edges absent from the graph stay neutral, so sparse-but-consistent
/// clusters still assemble.
///
/// Duplicate edges keep their maximum weight. Returns dense cluster labels
/// in `[0, k)` for nodes `0..n-1`; the result is deterministic (ties break
/// on node ids).
std::vector<size_t> ClusterPairGraph(size_t n,
                                     const std::vector<PairEdge>& edges,
                                     double threshold);

}  // namespace jocl

#endif  // JOCL_CORE_DECODE_H_
