#ifndef JOCL_CORE_DECODE_H_
#define JOCL_CORE_DECODE_H_

#include <cstddef>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/problem.h"

namespace jocl {

struct JoclResult;

/// \brief A weighted undirected edge of the pair graph: two node ids plus
/// the model's same-meaning belief (marginal of `x = 1`).
using PairEdge = std::tuple<size_t, size_t, double>;

/// \brief Clusters a sparse pair graph of LBP marginals with conflict
/// vetoes (§3.5 applied at decode time).
///
/// Plain transitive closure over `x = 1` edges lets a handful of
/// confident-but-wrong edges chain everything into one giant cluster.
/// Instead, candidate edges (weight >= \p threshold) are processed in
/// decreasing confidence, and a merge of two clusters is vetoed when the
/// *observed* cross edges between them average below the threshold — a
/// merge most of the model's own pairwise beliefs contradict is rejected.
/// Edges absent from the graph stay neutral, so sparse-but-consistent
/// clusters still assemble.
///
/// Duplicate edges keep their maximum weight. Returns dense cluster labels
/// in `[0, k)` for nodes `0..n-1`; the result is deterministic (ties break
/// on node ids).
///
/// \p threads > 1 fans the merge process out over the connected components
/// of the *thresholded* edge graph: merges never cross a component and the
/// veto only consults edges between members of merging clusters, so
/// components are independent and the labels are byte-identical to the
/// sequential run for any thread count.
std::vector<size_t> ClusterPairGraph(size_t n,
                                     const std::vector<PairEdge>& edges,
                                     double threshold, size_t threads = 1);

/// \brief Inference outputs in the *global problem's* indexing — the
/// contract between per-shard inference and the global decode.
///
/// Each shard's engine fills the slices of these arrays that its pair and
/// triple maps cover (shards partition both spaces, so writes are
/// disjoint); the monolithic path fills everything from one engine.
/// Canonicalization vectors are aligned with `problem.*_pairs`, linking
/// vectors with `problem.triples`; either group may be empty when the
/// corresponding factor family is ablated.
struct JoclBeliefs {
  /// Full marginal per pair variable (2 states: different/same meaning).
  std::vector<std::vector<double>> x_marg, y_marg, z_marg;
  /// Decoded state per pair variable.
  std::vector<size_t> x_state, y_state, z_state;
  /// Full marginal per linking variable (state 0 = NIL, k = candidate k-1).
  std::vector<std::vector<double>> es_marg, rp_marg, eo_marg;
  /// Decoded state per linking variable.
  std::vector<size_t> es_state, rp_state, eo_state;
};

/// \brief Knobs of the global decode + §3.5 conflict resolution.
struct JointDecodeOptions {
  /// Mirror of GraphBuilderOptions::enable_canonicalization / _linking for
  /// the graph the beliefs came from.
  bool canonicalization = true;
  bool linking = true;
  /// Same-meaning belief needed for a cluster merge edge.
  double cluster_threshold = 0.5;
  /// §3.5 only fires for pairs whose same-meaning marginal reaches this.
  double conflict_confidence = 0.75;
  /// Mentions whose own link confidence reaches this are never overturned
  /// by conflict resolution (the model is surer than the group vote).
  double overturn_guard = 0.85;
  /// Worker threads for the decode's component-parallel stages
  /// (clustering and conflict resolution): 1 = sequential. Output is
  /// byte-identical for any setting — work is partitioned by conflict
  /// group, and groups touch disjoint state.
  size_t threads = 1;
};

/// \brief §3.5 conflict resolution, in isolation: for every decoded
/// same-meaning pair (confident enough per \p options), mentions linked to
/// the smaller link group move to the larger one — unless their own link
/// confidence passes the overturn guard. NIL links and agreeing links are
/// left alone. Mutates \p np_link / \p rp_link in place.
void ResolveLinkConflicts(const JoclProblem& problem,
                          const JoclBeliefs& beliefs,
                          const JointDecodeOptions& options,
                          std::vector<int64_t>* np_link,
                          std::vector<int64_t>* rp_link);

/// \brief The full global decode: linking decode, canonicalization
/// clustering over the pair-marginal graph (with the JOCLlink
/// group-by-entity fallback), conflict resolution, and mention-label
/// materialization. Fills np_cluster / rp_cluster / np_link / rp_link of
/// \p result (diagnostics, triples and weights are the caller's).
void DecodeJointResult(const JoclProblem& problem, const JoclBeliefs& beliefs,
                       const JointDecodeOptions& options, JoclResult* result);

}  // namespace jocl

#endif  // JOCL_CORE_DECODE_H_
