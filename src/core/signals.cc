#include "core/signals.h"

#include "embedding/corpus.h"
#include "embedding/word2vec.h"
#include "util/logging.h"

namespace jocl {

Result<SignalBundle> BuildSignals(const Dataset& dataset,
                                  const SignalOptions& options) {
  SignalBundle bundle;

  // IDF over the phrase population (paper: frequency of words over all NPs
  // of the OIE triples; analogously for RPs).
  for (const auto& triple : dataset.okb.triples()) {
    bundle.np_idf.AddPhrase(triple.subject);
    bundle.np_idf.AddPhrase(triple.object);
    bundle.rp_idf.AddPhrase(triple.predicate);
  }

  // Embeddings. The full table sees triples + the synthetic source text;
  // the triple-only table is what source-text-blind systems can learn.
  std::vector<std::vector<std::string>> corpus =
      BuildTripleCorpus(dataset.okb);
  Word2VecOptions w2v;
  w2v.dim = options.embedding_dim;
  w2v.epochs = options.embedding_epochs;
  w2v.seed = options.seed;
  Word2Vec trainer(w2v);
  Result<EmbeddingTable> triple_only = trainer.Train(corpus);
  if (!triple_only.ok()) return triple_only.status();
  bundle.triple_embeddings = triple_only.MoveValueOrDie();

  AppendSentences(dataset.aux_sentences, &corpus);
  Result<EmbeddingTable> trained = trainer.Train(corpus);
  if (!trained.ok()) return trained.status();
  bundle.embeddings = trained.MoveValueOrDie();

  // PPDB is a property of the data set (the paper uses the released PPDB
  // resource; our generator ships a noisy equivalent).
  bundle.ppdb = &dataset.ppdb;

  // AMIE over morph-normalized triples.
  AmieOptions amie_options;
  amie_options.min_support = options.amie_min_support;
  amie_options.min_confidence = options.amie_min_confidence;
  bundle.amie = AmieMiner(amie_options);
  bundle.amie.Mine(dataset.okb);

  // KBP mapper: labeled RP -> relation pairs from the validation split.
  std::vector<KbpExample> examples;
  for (size_t t : dataset.validation_triples) {
    if (dataset.gold_relation[t] == kNilId) continue;
    examples.push_back(
        KbpExample{dataset.okb.triple(t).predicate, dataset.gold_relation[t]});
  }
  bundle.kbp.Train(examples);

  JOCL_LOG(kDebug) << "signals: vocab=" << bundle.embeddings.size()
                   << " amie_rules=" << bundle.amie.rules().size()
                   << " kbp_examples=" << examples.size();
  return bundle;
}

}  // namespace jocl
