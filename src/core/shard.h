#ifndef JOCL_CORE_SHARD_H_
#define JOCL_CORE_SHARD_H_

#include <cstddef>
#include <vector>

#include "core/problem.h"

namespace jocl {

/// \brief One independent sub-problem of a partitioned `JoclProblem`,
/// plus the local→global index maps the runtime needs to scatter shard
/// results back into the global belief arrays.
///
/// All index maps are strictly increasing, so shard-local iteration order
/// equals the global relative order — factor construction inside a shard
/// is a subsequence of the monolithic construction.
struct ProblemShard {
  /// The re-indexed sub-problem (its `triples` hold global dataset triple
  /// ids, like any JoclProblem). One deviation from BuildProblem's
  /// convention: local surfaces are ordered by ascending *global* surface
  /// id (not shard-local first appearance), which keeps every local pair
  /// normalized (a < b) and shard-local pair order equal to the global
  /// relative order.
  JoclProblem problem;

  /// Local triple index -> index into the *global* problem's per-triple
  /// vectors (subject_of, es beliefs, ...).
  std::vector<size_t> triple_map;

  /// Local surface index -> global surface index, per role.
  std::vector<size_t> subject_surface_map;
  std::vector<size_t> predicate_surface_map;
  std::vector<size_t> object_surface_map;

  /// Local pair index -> global pair index, per role.
  std::vector<size_t> subject_pair_map;
  std::vector<size_t> predicate_pair_map;
  std::vector<size_t> object_pair_map;
};

/// \brief Deterministic greedy packing of weighted items into bins:
/// heaviest item first onto the currently lightest bin (ties: lower item
/// id / lower bin id). Returns each item's bin. \p bins = 0 or >= the
/// item count yields the identity (one bin per item). Shared by
/// `PartitionProblem`'s component grouping and the sharded learner's
/// scheduling bins, so the two can never drift apart.
std::vector<size_t> PackWeightedItems(const std::vector<size_t>& weights,
                                      size_t bins);

/// \brief A deterministic partition of a problem into independent shards.
struct ShardPlan {
  std::vector<ProblemShard> shards;
  /// Independent sub-problems found before grouping (a shard holds >= 1).
  size_t component_count = 0;
};

/// \brief Partitions a problem into independent shards via union-find
/// over its triples: a pair variable connects the *representative*
/// (first-mention) triples of its two surfaces. That is exactly the
/// factor graph's connectivity: U4 ties a triple's own es/rp/eo linking
/// variables together, consistency factors attach a pair variable to the
/// linking variables of the pair's representative mentions, and
/// transitive triangles only span pairs that share a surface (hence a
/// representative). Non-representative mentions of a surface have no
/// factor to any other triple, so they shard independently — blocking
/// yields many small independent sub-problems, and the partition
/// recovers all of them. Every factor the graph builder would emit is
/// internal to exactly one shard, which is what makes per-shard
/// inference exact.
///
/// \p max_shards caps the shard count: 0 (or >= component count) keeps
/// one shard per connected component; otherwise components are packed
/// into \p max_shards bins by descending triple count onto the lightest
/// bin (deterministic). `max_shards = 1` reproduces the monolithic
/// problem as a single shard.
///
/// The partition only regroups work — per-shard graphs are connected
/// components of the monolithic factor graph, so inference results are
/// identical for every max_shards setting.
ShardPlan PartitionProblem(const JoclProblem& problem, size_t max_shards);

/// \brief Delta mode: how one shard of a new partition relates to the
/// previous partition's components (the session's dirtiness signal).
enum class ShardDeltaState {
  /// Same triple set as exactly one previous component, and no triple of
  /// the mutation batch inside — a candidate for belief reuse.
  kClean,
  /// Contains a triple of the mutation batch but maps onto (at most) one
  /// previous component otherwise.
  kTouched,
  /// Assembled from several previous components: a batch triple (or a
  /// cap-induced pair change) bridged formerly independent sub-problems.
  kMerged,
  /// A strict fragment of one previous component: a removal (or pair
  /// change) disconnected it.
  kSplit,
  /// Every triple is new — no overlap with any previous component.
  kNew,
};

/// \brief Per-shard classification of a new partition against a previous
/// one, plus the aggregate merge/split counts the session reports.
struct ShardDelta {
  /// One state per shard of the new plan, aligned with `plan.shards`.
  std::vector<ShardDeltaState> states;
  /// Shards whose state is not kClean.
  size_t dirty = 0;
  /// Shards assembled from >= 2 previous components.
  size_t merged = 0;
  /// Previous components whose surviving triples now span >= 2 shards (or
  /// that lost triples to a removal while the rest stayed together).
  size_t split = 0;
};

/// \brief Classifies every shard of \p plan against the previous
/// partition, given as the previous components' sorted dataset-triple-id
/// lists, using the same union-find connectivity that built the plan.
///
/// \p changed_triples are the dataset triple ids of the mutation batch
/// (added triples; removed ids are naturally absent from the new plan and
/// surface as kSplit / kTouched fragments of their former components).
/// The classification is structural only: a kClean verdict means the
/// shard covers exactly one previous component's triples, which makes
/// reuse *plausible* — the session still verifies the local problems are
/// equal before reusing beliefs, because global blocking caps can change
/// a component's pairs without changing its triple set.
ShardDelta ClassifyShardDelta(
    const ShardPlan& plan,
    const std::vector<std::vector<size_t>>& previous_components,
    const std::vector<size_t>& changed_triples);

}  // namespace jocl

#endif  // JOCL_CORE_SHARD_H_
