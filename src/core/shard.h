#ifndef JOCL_CORE_SHARD_H_
#define JOCL_CORE_SHARD_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/problem.h"

namespace jocl {

/// \brief One independent sub-problem of a partitioned `JoclProblem`,
/// plus the local→global index maps the runtime needs to scatter shard
/// results back into the global belief arrays.
///
/// All index maps are strictly increasing, so shard-local iteration order
/// equals the global relative order — factor construction inside a shard
/// is a subsequence of the monolithic construction.
struct ProblemShard {
  /// The re-indexed sub-problem (its `triples` hold global dataset triple
  /// ids, like any JoclProblem). One deviation from BuildProblem's
  /// convention: local surfaces are ordered by ascending *global* surface
  /// id (not shard-local first appearance), which keeps every local pair
  /// normalized (a < b) and shard-local pair order equal to the global
  /// relative order.
  JoclProblem problem;

  /// Local triple index -> index into the *global* problem's per-triple
  /// vectors (subject_of, es beliefs, ...).
  std::vector<size_t> triple_map;

  /// Local surface index -> global surface index, per role.
  std::vector<size_t> subject_surface_map;
  std::vector<size_t> predicate_surface_map;
  std::vector<size_t> object_surface_map;

  /// Local pair index -> global pair index, per role.
  std::vector<size_t> subject_pair_map;
  std::vector<size_t> predicate_pair_map;
  std::vector<size_t> object_pair_map;
};

/// \brief Deterministic greedy packing of weighted items into bins:
/// heaviest item first onto the currently lightest bin (ties: lower item
/// id / lower bin id). Returns each item's bin. \p bins = 0 or >= the
/// item count yields the identity (one bin per item). Shared by
/// `PartitionProblem`'s component grouping and the sharded learner's
/// scheduling bins, so the two can never drift apart.
std::vector<size_t> PackWeightedItems(const std::vector<size_t>& weights,
                                      size_t bins);

/// \brief A deterministic partition of a problem into independent shards.
struct ShardPlan {
  std::vector<ProblemShard> shards;
  /// Independent sub-problems found before grouping (a shard holds >= 1).
  size_t component_count = 0;
};

/// \brief Partitions a problem into independent shards via union-find
/// over its triples: a pair variable connects the *representative*
/// (first-mention) triples of its two surfaces. That is exactly the
/// factor graph's connectivity: U4 ties a triple's own es/rp/eo linking
/// variables together, consistency factors attach a pair variable to the
/// linking variables of the pair's representative mentions, and
/// transitive triangles only span pairs that share a surface (hence a
/// representative). Non-representative mentions of a surface have no
/// factor to any other triple, so they shard independently — blocking
/// yields many small independent sub-problems, and the partition
/// recovers all of them. Every factor the graph builder would emit is
/// internal to exactly one shard, which is what makes per-shard
/// inference exact.
///
/// \p max_shards caps the shard count: 0 (or >= component count) keeps
/// one shard per connected component; otherwise components are packed
/// into \p max_shards bins by descending triple count onto the lightest
/// bin (deterministic). `max_shards = 1` reproduces the monolithic
/// problem as a single shard.
///
/// The partition only regroups work — per-shard graphs are connected
/// components of the monolithic factor graph, so inference results are
/// identical for every max_shards setting.
ShardPlan PartitionProblem(const JoclProblem& problem, size_t max_shards);

/// \brief The connectivity half of `PartitionProblem`: labels every
/// triple of \p problem with its connected component (ids in
/// first-appearance order over `problem.triples`) and returns the
/// component count. \p comp_weight receives the triple count per
/// component. The labeling is exactly the one PartitionProblem shards by.
size_t ComputeProblemComponents(const JoclProblem& problem,
                                std::vector<size_t>* comp_of_triple,
                                std::vector<size_t>* comp_weight);

/// \brief The materialization half of `PartitionProblem`: turns component
/// labels (from `ComputeProblemComponents` or an `IncrementalPartitioner`,
/// which produce identical labels) into a ShardPlan.
///
/// With \p lazy false the plan is byte-identical to PartitionProblem's.
/// With \p lazy true only the index maps are filled — `triple_map`,
/// `problem.triples`, the per-role `*_surface_map` / `*_pair_map` —
/// which is all that `ClassifyShardDelta`, `ScatterShardBeliefs` and
/// `ShardMatchesCached` read; the local problem bodies of the (few)
/// shards that actually need them are completed on demand with
/// `MaterializeShardProblem`. Skipping the per-shard string copies for
/// clean shards is what makes the steady-state partition stage O(active)
/// integer work instead of a full problem copy.
ShardPlan MaterializeShardPlan(const JoclProblem& problem,
                               const std::vector<size_t>& comp_of_triple,
                               const std::vector<size_t>& comp_weight,
                               size_t max_shards, bool lazy);

/// \brief Completes the local problem body of one lazily materialized
/// shard (surfaces, per-triple indices, representatives, candidates and
/// re-indexed pairs), byte-identical to the eager path. Idempotent on an
/// already-complete shard only in the trivial sense — call it exactly
/// once per lazy shard.
void MaterializeShardProblem(const JoclProblem& problem, ProblemShard* shard);

/// \brief Structural equality of a cached local problem against the
/// projection \p shard would materialize from \p problem — the session's
/// belief-reuse guard, evaluated without paying the materialization.
/// Equivalent to `MaterializeShardProblem` followed by a field-by-field
/// compare (triples, surface strings, indices, pairs incl. idf and the
/// candidate-blocked tag, candidate lists).
bool ShardMatchesCached(const JoclProblem& problem, const ProblemShard& shard,
                        const JoclProblem& cached);

/// \brief One batch's front-end changes in *stable* identifiers — dataset
/// triple ids and the problem builder's persistent per-role surface ids —
/// the currency between the incremental problem builder and the
/// incremental partitioner. Roles are indexed 0 = subject, 1 = predicate,
/// 2 = object.
struct FrontEndDelta {
  static constexpr size_t kRetired = static_cast<size_t>(-1);

  /// True when `max_pairs_per_role` truncated an admitted pair set: the
  /// emitted problem is still exact, but which pairs survive the cap
  /// depends on global similarity rank, so the pair deltas below (which
  /// always describe the *untruncated* admitted set) don't match the
  /// emitted problem and the caller must label this batch's components
  /// with scratch connectivity (`ComputeProblemComponents`).
  bool overflow = false;

  std::vector<size_t> added_triples;    ///< dataset ids, ascending
  std::vector<size_t> removed_triples;  ///< dataset ids, ascending

  /// A surface whose activation state or representative changed this
  /// batch: `rep` is the new representative mention's dataset triple id,
  /// or `kRetired` when the surface left the active set.
  struct SurfaceEvent {
    uint32_t sid = 0;
    size_t rep = 0;
  };
  std::array<std::vector<SurfaceEvent>, 3> surface_events;

  /// Admitted-pair transitions, packed as (lo_sid << 32) | hi_sid.
  struct PairEvents {
    std::vector<uint64_t> added;
    std::vector<uint64_t> removed;
  };
  std::array<PairEvents, 3> pair_events;

  bool empty() const {
    if (!added_triples.empty() || !removed_triples.empty()) return false;
    for (const auto& events : surface_events) {
      if (!events.empty()) return false;
    }
    for (const auto& events : pair_events) {
      if (!events.added.empty() || !events.removed.empty()) return false;
    }
    return true;
  }
};

/// \brief Persistent union-find over the active triple set: the session's
/// O(Δ·α) partition front-end.
///
/// Nodes are dataset triples plus one node per active (role, surface).
/// Edges mirror the factor graph's connectivity exactly as
/// `PartitionProblem` sees it: each admitted pair links its two surface
/// nodes, and each surface node links to its *representative* mention's
/// triple — so two triples share a component iff a chain of pairs
/// connects their representative surfaces, the same relation the scratch
/// union-find computes (non-representative mentions stay independent).
///
/// `Apply` extends the structure in O(batch · α) for additions; removals
/// dissolve only the components that lost a triple, surface or pair and
/// rebuild them from their surviving edges (per-component member and
/// edge lists are kept small-to-large, so a removal pays for the
/// affected components, never the world). `Components` then labels the
/// active triples identically to `ComputeProblemComponents` over the
/// equivalent scratch problem (property-tested in tests/session_test.cc).
class IncrementalPartitioner {
 public:
  /// \p dataset_triples fixes the triple node space ahead of the surface
  /// nodes (`Dataset::okb.size()`).
  explicit IncrementalPartitioner(size_t dataset_triples);

  /// Applies one batch's stable-id delta. Pair deltas always describe the
  /// untruncated admitted set, so Apply stays valid across overflow
  /// batches and self-heals when truncation stops — `delta.overflow` only
  /// means the caller must label *this* batch's components with
  /// `ComputeProblemComponents` instead of `Components`.
  void Apply(const FrontEndDelta& delta);

  /// Component labels for \p active_triples (ascending dataset ids), in
  /// first-appearance order; returns the component count and fills
  /// per-component triple counts. Mutating only through path compression.
  size_t Components(const std::vector<size_t>& active_triples,
                    std::vector<size_t>* comp_of_triple,
                    std::vector<size_t>* comp_weight);

 private:
  struct Group {
    std::vector<size_t> members;
    std::vector<std::pair<size_t, size_t>> edges;
  };

  size_t NodeOf(size_t role, uint32_t sid) const {
    return base_ + static_cast<size_t>(sid) * 3 + role;
  }
  void EnsureNode(size_t node);
  size_t Find(size_t node);
  void Activate(size_t node);
  void AddEdge(size_t u, size_t v);

  size_t base_;  ///< surface nodes start here (== dataset triple count)
  std::vector<size_t> parent_;
  std::vector<uint8_t> active_;
  /// Surface node -> its representative's triple node (kRetired = none).
  std::vector<size_t> rep_of_;
  /// Per-root member + internal-edge lists (only roots have entries).
  std::unordered_map<size_t, Group> groups_;
};

/// \brief Delta mode: how one shard of a new partition relates to the
/// previous partition's components (the session's dirtiness signal).
enum class ShardDeltaState {
  /// Same triple set as exactly one previous component, and no triple of
  /// the mutation batch inside — a candidate for belief reuse.
  kClean,
  /// Contains a triple of the mutation batch but maps onto (at most) one
  /// previous component otherwise.
  kTouched,
  /// Assembled from several previous components: a batch triple (or a
  /// cap-induced pair change) bridged formerly independent sub-problems.
  kMerged,
  /// A strict fragment of one previous component: a removal (or pair
  /// change) disconnected it.
  kSplit,
  /// Every triple is new — no overlap with any previous component.
  kNew,
};

/// \brief Per-shard classification of a new partition against a previous
/// one, plus the aggregate merge/split counts the session reports.
struct ShardDelta {
  /// One state per shard of the new plan, aligned with `plan.shards`.
  std::vector<ShardDeltaState> states;
  /// Shards whose state is not kClean.
  size_t dirty = 0;
  /// Shards assembled from >= 2 previous components.
  size_t merged = 0;
  /// Previous components whose surviving triples now span >= 2 shards (or
  /// that lost triples to a removal while the rest stayed together).
  size_t split = 0;
};

/// \brief Classifies every shard of \p plan against the previous
/// partition, given as the previous components' sorted dataset-triple-id
/// lists, using the same union-find connectivity that built the plan.
///
/// \p changed_triples are the dataset triple ids of the mutation batch
/// (added triples; removed ids are naturally absent from the new plan and
/// surface as kSplit / kTouched fragments of their former components).
/// The classification is structural only: a kClean verdict means the
/// shard covers exactly one previous component's triples, which makes
/// reuse *plausible* — the session still verifies the local problems are
/// equal before reusing beliefs, because global blocking caps can change
/// a component's pairs without changing its triple set.
ShardDelta ClassifyShardDelta(
    const ShardPlan& plan,
    const std::vector<std::vector<size_t>>& previous_components,
    const std::vector<size_t>& changed_triples);

}  // namespace jocl

#endif  // JOCL_CORE_SHARD_H_
