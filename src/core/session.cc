#include "core/session.h"

#include <algorithm>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/worker_pool.h"

namespace jocl {
namespace {

/// Mirrors a finished batch's stats onto the process-wide registry (the
/// LBP families are shared with the runtime — same (name, labels) pair,
/// same handle).
void MirrorSessionStats(const SessionStats& stats, uint64_t generation) {
  MetricsRegistry& global = MetricsRegistry::Global();
  static Counter* batches = global.AddCounter(
      "jocl_session_batches_total", "", "Session refreshes (ingest batches)");
  static Counter* dirty = global.AddCounter(
      "jocl_session_dirty_shards_total", "", "Shards re-inferred per batch");
  static Counter* clean =
      global.AddCounter("jocl_session_clean_shards_total", "",
                        "Shards reused from the belief store");
  static Counter* cache_hits = global.AddCounter(
      "jocl_problem_cache_hits_total", "", "Problem-cache candidate hits");
  static Counter* cache_misses = global.AddCounter(
      "jocl_problem_cache_misses_total", "", "Problem-cache candidate misses");
  static Counter* new_phrases =
      global.AddCounter("jocl_signal_cache_new_phrases_total", "",
                        "Phrases first seen by the signal cache");
  static Counter* updates =
      global.AddCounter("jocl_lbp_message_updates_total", "",
                        "LBP message updates across all engines");
  static Counter* pops =
      global.AddCounter("jocl_lbp_residual_pops_total", "",
                        "Residual-schedule priority pops");
  static Counter* skipped =
      global.AddCounter("jocl_lbp_sweeps_skipped_total", "",
                        "Converged sweeps the kernel skipped");
  static Gauge* gen = global.AddGauge("jocl_session_generation", "",
                                      "Generation of the latest batch");
  static Histogram* stage_problem = global.AddHistogram(
      "jocl_session_frontend_seconds", "stage=\"problem\"",
      "Per-batch front-end stage wall time");
  static Histogram* stage_cache = global.AddHistogram(
      "jocl_session_frontend_seconds", "stage=\"signal_cache\"",
      "Per-batch front-end stage wall time");
  static Histogram* stage_partition = global.AddHistogram(
      "jocl_session_frontend_seconds", "stage=\"partition\"",
      "Per-batch front-end stage wall time");
  static Histogram* stage_decode = global.AddHistogram(
      "jocl_session_frontend_seconds", "stage=\"decode\"",
      "Per-batch front-end stage wall time");
  batches->Add();
  dirty->Add(stats.dirty_shards);
  clean->Add(stats.clean_shards);
  cache_hits->Add(stats.problem_cache_hits);
  cache_misses->Add(stats.problem_cache_misses);
  new_phrases->Add(stats.cache_new_phrases);
  updates->Add(stats.message_updates);
  pops->Add(stats.residual_pops);
  skipped->Add(stats.sweeps_skipped);
  auto record_seconds = [](Histogram* histogram, double seconds) {
    histogram->Record(static_cast<uint64_t>(seconds * 1e9));
  };
  record_seconds(stage_problem, stats.problem_seconds);
  record_seconds(stage_cache, stats.cache_seconds);
  record_seconds(stage_partition, stats.partition_seconds);
  record_seconds(stage_decode, stats.decode_seconds);
  gen->Set(static_cast<int64_t>(generation));
}

/// Structural equality of two local problems — the session's reuse guard.
/// Cached beliefs are a pure function of the local problem + weights, so
/// equality here makes reuse byte-exact; a fingerprint could not give
/// that guarantee. Surface *strings* are compared (not global ids), which
/// also covers reorderings caused by removals changing first-appearance
/// order.
bool ProblemsEqual(const JoclProblem& a, const JoclProblem& b) {
  auto pairs_equal = [](const std::vector<SurfacePair>& x,
                        const std::vector<SurfacePair>& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].a != y[i].a || x[i].b != y[i].b || x[i].idf != y[i].idf ||
          x[i].candidate_blocked != y[i].candidate_blocked) {
        return false;
      }
    }
    return true;
  };
  auto entity_candidates_equal =
      [](const std::vector<std::vector<EntityCandidate>>& x,
         const std::vector<std::vector<EntityCandidate>>& y) {
        if (x.size() != y.size()) return false;
        for (size_t i = 0; i < x.size(); ++i) {
          if (x[i].size() != y[i].size()) return false;
          for (size_t c = 0; c < x[i].size(); ++c) {
            if (x[i][c].id != y[i][c].id ||
                x[i][c].popularity != y[i][c].popularity) {
              return false;
            }
          }
        }
        return true;
      };
  auto relation_candidates_equal =
      [](const std::vector<std::vector<RelationCandidate>>& x,
         const std::vector<std::vector<RelationCandidate>>& y) {
        if (x.size() != y.size()) return false;
        for (size_t i = 0; i < x.size(); ++i) {
          if (x[i].size() != y[i].size()) return false;
          for (size_t c = 0; c < x[i].size(); ++c) {
            if (x[i][c].id != y[i][c].id || x[i][c].score != y[i][c].score) {
              return false;
            }
          }
        }
        return true;
      };
  return a.triples == b.triples &&
         a.subject_surfaces == b.subject_surfaces &&
         a.predicate_surfaces == b.predicate_surfaces &&
         a.object_surfaces == b.object_surfaces &&
         a.subject_of == b.subject_of && a.predicate_of == b.predicate_of &&
         a.object_of == b.object_of && a.subject_rep == b.subject_rep &&
         a.predicate_rep == b.predicate_rep && a.object_rep == b.object_rep &&
         pairs_equal(a.subject_pairs, b.subject_pairs) &&
         pairs_equal(a.predicate_pairs, b.predicate_pairs) &&
         pairs_equal(a.object_pairs, b.object_pairs) &&
         entity_candidates_equal(a.subject_candidates, b.subject_candidates) &&
         entity_candidates_equal(a.object_candidates, b.object_candidates) &&
         relation_candidates_equal(a.predicate_candidates,
                                   b.predicate_candidates);
}

/// Previous beliefs addressed by identity that survives repartitioning:
/// pairs by their surface strings, linking variables by dataset triple id.
struct WarmIndex {
  std::unordered_map<std::string, const std::vector<double>*> x, y, z;
  std::unordered_map<size_t, const std::vector<double>*> es, rp, eo;

  static std::string PairKey(const std::string& a, const std::string& b) {
    std::string key;
    key.reserve(a.size() + b.size() + 1);
    key.append(a);
    key.push_back('\x1f');
    key.append(b);
    return key;
  }

  /// Indexes the previous global problem's beliefs (no copies; the index
  /// only lives within one Refresh, before the previous state is
  /// replaced).
  static WarmIndex Build(const JoclProblem& problem,
                         const JoclBeliefs& beliefs) {
    WarmIndex index;
    auto index_pairs =
        [](const std::vector<SurfacePair>& pairs,
           const std::vector<std::string>& surfaces,
           const std::vector<std::vector<double>>& marg,
           std::unordered_map<std::string, const std::vector<double>*>* out) {
          if (marg.size() != pairs.size()) return;  // family ablated
          for (size_t p = 0; p < pairs.size(); ++p) {
            (*out)[PairKey(surfaces[pairs[p].a], surfaces[pairs[p].b])] =
                &marg[p];
          }
        };
    index_pairs(problem.subject_pairs, problem.subject_surfaces,
                beliefs.x_marg, &index.x);
    index_pairs(problem.predicate_pairs, problem.predicate_surfaces,
                beliefs.y_marg, &index.y);
    index_pairs(problem.object_pairs, problem.object_surfaces,
                beliefs.z_marg, &index.z);
    auto index_links =
        [](const std::vector<size_t>& triples,
           const std::vector<std::vector<double>>& marg,
           std::unordered_map<size_t, const std::vector<double>*>* out) {
          if (marg.size() != triples.size()) return;
          for (size_t t = 0; t < triples.size(); ++t) {
            (*out)[triples[t]] = &marg[t];
          }
        };
    index_links(problem.triples, beliefs.es_marg, &index.es);
    index_links(problem.triples, beliefs.rp_marg, &index.rp);
    index_links(problem.triples, beliefs.eo_marg, &index.eo);
    return index;
  }

  /// Assembles one dirty shard's warm hints in local indexing.
  ShardWarmStart HintsFor(const JoclProblem& local, size_t* hinted) const {
    ShardWarmStart warm;
    auto hint_pairs =
        [&](const std::vector<SurfacePair>& pairs,
            const std::vector<std::string>& surfaces,
            const std::unordered_map<std::string,
                                     const std::vector<double>*>& index,
            std::vector<std::vector<double>>* out) {
          out->resize(pairs.size());
          for (size_t p = 0; p < pairs.size(); ++p) {
            auto it = index.find(
                PairKey(surfaces[pairs[p].a], surfaces[pairs[p].b]));
            if (it == index.end()) continue;
            (*out)[p] = *it->second;
            ++*hinted;
          }
        };
    hint_pairs(local.subject_pairs, local.subject_surfaces, x, &warm.x_prior);
    hint_pairs(local.predicate_pairs, local.predicate_surfaces, y,
               &warm.y_prior);
    hint_pairs(local.object_pairs, local.object_surfaces, z, &warm.z_prior);
    auto hint_links =
        [&](const std::unordered_map<size_t, const std::vector<double>*>&
                index,
            std::vector<std::vector<double>>* out) {
          out->resize(local.triples.size());
          for (size_t t = 0; t < local.triples.size(); ++t) {
            auto it = index.find(local.triples[t]);
            if (it == index.end()) continue;
            (*out)[t] = *it->second;
            ++*hinted;
          }
        };
    hint_links(es, &warm.es_prior);
    hint_links(rp, &warm.rp_prior);
    hint_links(eo, &warm.eo_prior);
    return warm;
  }
};

}  // namespace

JoclSession::JoclSession(const Dataset* dataset, const SignalBundle* signals,
                         JoclOptions options, SessionOptions session,
                         std::vector<double> weights)
    : dataset_(dataset),
      signals_(signals),
      options_(std::move(options)),
      session_(session),
      weights_(std::move(weights)) {
  if (weights_.empty()) weights_ = Jocl::DefaultWeights();
}

Status JoclSession::AddTriples(const std::vector<size_t>& batch,
                               SessionStats* stats) {
  if (stats != nullptr) *stats = SessionStats();
  if (weights_.size() != WeightLayout::kCount) {
    return Status::InvalidArgument(
        "session weights must have WeightLayout::kCount entries");
  }
  for (size_t t : batch) {
    if (t >= dataset_->okb.size()) {
      return Status::InvalidArgument("AddTriples: triple index " +
                                     std::to_string(t) +
                                     " out of range for the dataset");
    }
  }
  // Sorted batch minus the already-active ids.
  std::vector<size_t> fresh = batch;
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::vector<size_t> added;
  added.reserve(fresh.size());
  std::set_difference(fresh.begin(), fresh.end(), active_.begin(),
                      active_.end(), std::back_inserter(added));
  if (added.empty()) return Status::OK();  // no-op, result unchanged

  std::vector<size_t> merged;
  merged.reserve(active_.size() + added.size());
  std::merge(active_.begin(), active_.end(), added.begin(), added.end(),
             std::back_inserter(merged));
  active_ = std::move(merged);
  if (stats != nullptr) stats->added = added.size();
  return Refresh(added, {}, stats);
}

Status JoclSession::RemoveTriples(const std::vector<size_t>& batch,
                                  SessionStats* stats) {
  if (stats != nullptr) *stats = SessionStats();
  if (weights_.size() != WeightLayout::kCount) {
    return Status::InvalidArgument(
        "session weights must have WeightLayout::kCount entries");
  }
  std::vector<size_t> fresh = batch;
  std::sort(fresh.begin(), fresh.end());
  fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
  std::vector<size_t> removed;
  removed.reserve(fresh.size());
  std::set_intersection(fresh.begin(), fresh.end(), active_.begin(),
                        active_.end(), std::back_inserter(removed));
  if (removed.empty()) return Status::OK();  // no-op, result unchanged

  std::vector<size_t> remaining;
  remaining.reserve(active_.size() - removed.size());
  std::set_difference(active_.begin(), active_.end(), removed.begin(),
                      removed.end(), std::back_inserter(remaining));
  active_ = std::move(remaining);
  if (stats != nullptr) stats->removed = removed.size();
  return Refresh({}, removed, stats);
}

Status JoclSession::UpdateWeights(std::vector<double> weights,
                                  SessionStats* stats) {
  if (stats != nullptr) *stats = SessionStats();
  if (weights.empty()) weights = Jocl::DefaultWeights();
  if (weights.size() != WeightLayout::kCount) {
    return Status::InvalidArgument(
        "session weights must have WeightLayout::kCount entries");
  }
  if (weights == weights_) return Status::OK();  // no-op, result unchanged
  weights_ = std::move(weights);
  // Every cached belief was computed under the old weights; the store is
  // the reuse guard, so clearing it marks every component dirty.
  store_.clear();
  if (active_.empty()) return Status::OK();  // nothing to re-infer yet
  return Refresh({}, {}, stats);
}

Status JoclSession::Refresh(const std::vector<size_t>& added,
                            const std::vector<size_t>& removed,
                            SessionStats* stats) {
  SessionStats local_stats;
  local_stats.added = stats != nullptr ? stats->added : 0;
  local_stats.removed = stats != nullptr ? stats->removed : 0;
  Stopwatch watch;
  ScopedSpan batch_span("ingest_batch");
  std::optional<ScopedSpan> span;

  const bool incremental = session_.incremental_frontend &&
                           ProblemBuilder::Supports(options_.problem);
  const size_t frontend_threads =
      session_.frontend_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : session_.frontend_threads;
  // Weights-only refresh over an unchanged active set (UpdateWeights):
  // the persisted problem and its partition are still exact — skip the
  // whole front-end and go straight to (all-dirty) inference.
  const bool reuse_frontend = added.empty() && removed.empty() &&
                              generation_ > 0 && problem_.triples == active_;

  // ---- global problem build (O(Δ) incremental, memoized scratch, or
  // reused verbatim) --------------------------------------------------------
  span.emplace("build_problem");
  const size_t cache_hits_before = problem_cache_.hits;
  const size_t cache_misses_before = problem_cache_.misses;
  JoclProblem problem;
  FrontEndDelta fdelta;
  if (reuse_frontend) {
    problem = std::move(problem_);
    local_stats.frontend_reused = true;
  } else if (incremental) {
    if (builder_ == nullptr) {
      builder_ = std::make_unique<ProblemBuilder>(
          dataset_, signals_, options_.problem, &problem_cache_);
    }
    builder_->Apply(added, removed, active_, frontend_threads, &problem,
                    &fdelta);
  } else {
    problem = BuildProblem(*dataset_, *signals_, active_, options_.problem,
                           &problem_cache_);
  }
  local_stats.problem_cache_hits = problem_cache_.hits - cache_hits_before;
  local_stats.problem_cache_misses =
      problem_cache_.misses - cache_misses_before;
  span.reset();
  local_stats.problem_seconds = watch.ElapsedSeconds();

  // ---- append-only signal-cache ingestion ---------------------------------
  watch.Reset();
  span.emplace("signal_cache");
  const size_t phrases_before = cache_.size();
  if (reuse_frontend) {
    // Problem unchanged: every phrase is already registered and finalized.
  } else if (incremental) {
    // Delta registration: only surfaces first interned this batch (and
    // their candidates' CKB names) can introduce new phrases — previously
    // seen surfaces already registered theirs (Add is idempotent and the
    // cache never evicts). Intern order differs from a scratch
    // RegisterProblem walk, but phrase ids are only ever compared for
    // equality, so query answers are identical.
    for (uint32_t sid : builder_->new_np_sids()) {
      cache_.Add(builder_->np_surface(sid));
      for (const EntityCandidate& candidate : builder_->np_candidates(sid)) {
        cache_.Add(dataset_->ckb.entity(candidate.id).name);
      }
    }
    for (uint32_t sid : builder_->new_rp_sids()) {
      cache_.Add(builder_->rp_surface(sid));
      for (const RelationCandidate& candidate : builder_->rp_candidates(sid)) {
        cache_.Add(dataset_->ckb.relation(candidate.id).name);
        for (const std::string& alias :
             dataset_->ckb.RelationAliases(candidate.id)) {
          cache_.Add(alias);
        }
      }
    }
    cache_.Finalize(*signals_);
  } else {
    cache_.RegisterProblem(problem, dataset_->ckb);
    cache_.Finalize(*signals_);
  }
  local_stats.cache_new_phrases = cache_.size() - phrases_before;
  span.reset();
  local_stats.cache_seconds = watch.ElapsedSeconds();

  // ---- partition + delta classification -----------------------------------
  // One shard per connected component: dirtiness is per-component, and
  // packing would only coarsen reuse. The incremental path labels
  // components with the persistent union-find (O(Δ·α)); scratch and
  // reused-problem batches derive them from the problem's pairs. Plans
  // are lazy on the incremental path — dirty shards materialize their
  // local problem bodies below, clean shards never do.
  watch.Reset();
  span.emplace("partition");
  const std::vector<size_t>& changed = !added.empty() ? added : removed;
  std::vector<size_t> comp_of_triple;
  std::vector<size_t> comp_weight;
  if (incremental && !reuse_frontend) {
    if (partitioner_ == nullptr) {
      partitioner_ =
          std::make_unique<IncrementalPartitioner>(dataset_->okb.size());
    }
    partitioner_->Apply(fdelta);
    if (fdelta.overflow) {
      ComputeProblemComponents(problem, &comp_of_triple, &comp_weight);
    } else {
      partitioner_->Components(active_, &comp_of_triple, &comp_weight);
    }
  } else {
    ComputeProblemComponents(problem, &comp_of_triple, &comp_weight);
  }
  const bool lazy_plan = incremental || reuse_frontend;
  ShardPlan plan = MaterializeShardPlan(problem, comp_of_triple, comp_weight,
                                        /*max_shards=*/0, lazy_plan);
  ShardDelta delta =
      ClassifyShardDelta(plan, previous_components_, changed);
  span.reset();
  local_stats.partition_seconds = watch.ElapsedSeconds();
  local_stats.shards = plan.shards.size();
  local_stats.merged_shards = delta.merged;
  local_stats.split_components = delta.split;

  ++generation_;

  // ---- reuse resolution ----------------------------------------------------
  // The store decides, not the delta classification: a shard whose triple
  // set matches *any* cached component (e.g. one restored by a removal
  // that undid an earlier merge) is reusable, provided its local problem
  // is structurally identical — the byte-exactness guard.
  watch.Reset();

  // Provably-clean skip: on a non-truncating incremental batch the
  // front-end delta announces every emission change (surface rep moves,
  // pair admissions/removals, candidate-blocked flips), and relative
  // surface ranks only move when a rep does. So a shard whose triple
  // membership is unchanged (kClean) and whose triples host no mention of
  // any event surface is byte-identical to its cached body by
  // construction — the structural compare would walk its strings for
  // nothing. Everything else still pays the full guard.
  std::vector<uint8_t> event_touched;
  const bool can_skip_clean = incremental && !reuse_frontend &&
                              !fdelta.overflow && !prev_overflow_ &&
                              plan.shards.size() == plan.component_count;
  if (can_skip_clean) {
    event_touched.assign(plan.shards.size(), 0);
    auto touch_sid = [&](size_t role, uint32_t sid) {
      for (size_t t : builder_->mentions(role, sid)) {
        auto it = std::lower_bound(problem.triples.begin(),
                                   problem.triples.end(), t);
        if (it != problem.triples.end() && *it == t) {
          event_touched[comp_of_triple[it - problem.triples.begin()]] = 1;
        }
      }
    };
    for (size_t role = 0; role < 3; ++role) {
      for (const auto& event : fdelta.surface_events[role]) {
        touch_sid(role, event.sid);
      }
      for (uint64_t packed : fdelta.pair_events[role].added) {
        touch_sid(role, static_cast<uint32_t>(packed >> 32));
        touch_sid(role, static_cast<uint32_t>(packed));
      }
      for (uint64_t packed : fdelta.pair_events[role].removed) {
        touch_sid(role, static_cast<uint32_t>(packed >> 32));
        touch_sid(role, static_cast<uint32_t>(packed));
      }
    }
  }
  if (incremental && !reuse_frontend) prev_overflow_ = fdelta.overflow;

  // Recycle the previous batch's arrays: SizeJoclBeliefs resizes in
  // place, so the scatters below assign into existing inner-vector
  // capacity instead of reallocating every marginal. Warm start still
  // needs the old arrays for its hint index, so it forgoes the recycle.
  JoclBeliefs beliefs;
  if (!session_.warm_start) beliefs = std::move(beliefs_);
  SizeJoclBeliefs(problem, options_.builder, &beliefs);
  std::vector<SolvedComponent*> reused(plan.shards.size(), nullptr);
  std::vector<size_t> dirty;
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    auto it = store_.find(plan.shards[s].problem.triples);
    const bool provably_clean = can_skip_clean &&
                                delta.states[s] == ShardDeltaState::kClean &&
                                !event_touched[s];
    // Lazy shards have no local problem body yet: compare the cached body
    // against the projection the shard *would* materialize instead.
    bool match =
        it != store_.end() &&
        (provably_clean ||
         (lazy_plan
              ? ShardMatchesCached(problem, plan.shards[s], it->second.problem)
              : ProblemsEqual(it->second.problem, plan.shards[s].problem)));
    if (match) {
      reused[s] = &it->second;
      it->second.last_used = generation_;
    } else {
      dirty.push_back(s);
    }
  }
  local_stats.dirty_shards = dirty.size();
  local_stats.clean_shards = plan.shards.size() - dirty.size();

  // Lazy plans materialize only the dirty shards' local problems (the
  // per-component assembly fan-out); clean shards are scattered through
  // their index maps alone.
  if (lazy_plan && !dirty.empty()) {
    RunOnPool(
        dirty.size(),
        std::min(frontend_threads, std::max<size_t>(1, dirty.size())),
        [&](size_t d) { return plan.shards[dirty[d]].triple_map.size(); },
        [&](size_t d) {
          MaterializeShardProblem(problem, &plan.shards[dirty[d]]);
        });
  }
  // Reuse-guard checks + dirty materialization are front-end work: count
  // them toward the partition stage, and start the shard clock here.
  local_stats.partition_seconds += watch.ElapsedSeconds();
  watch.Reset();

  // Warm-start index over the previous batch's beliefs (approximate mode
  // only; see SessionOptions::warm_start).
  WarmIndex warm_index;
  std::vector<ShardWarmStart> warm(dirty.size());
  if (session_.warm_start) {
    warm_index = WarmIndex::Build(problem_, beliefs_);
    size_t hinted = 0;
    for (size_t d = 0; d < dirty.size(); ++d) {
      warm[d] = warm_index.HintsFor(plan.shards[dirty[d]].problem, &hinted);
    }
    local_stats.warm_hints = hinted;
  }

  // ---- dirty shards on a worker pool, heaviest first ----------------------
  std::vector<ShardBeliefs> outcomes(dirty.size());
  std::vector<ShardRunTimings> timings(dirty.size());
  size_t requested_threads =
      session_.num_threads == 0
          ? std::max<size_t>(1, std::thread::hardware_concurrency())
          : session_.num_threads;
  size_t n_threads =
      std::min(requested_threads, std::max<size_t>(1, dirty.size()));
  size_t engine_threads = 1;
  if (!dirty.empty() && dirty.size() < requested_threads) {
    engine_threads = (requested_threads + dirty.size() - 1) / dirty.size();
  }
  auto run_dirty = [&](size_t d) {
    // Track by the *plan* shard index: a deterministic key across thread
    // counts and batch replays (the pool's worker id is neither).
    TraceTrackScope track("shard/", dirty[d]);
    ScopedSpan span("shard_run");
    const ProblemShard& shard = plan.shards[dirty[d]];
    outcomes[d] = RunShardInference(
        shard.problem, cache_, dataset_->ckb, options_, weights_,
        engine_threads, session_.warm_start ? &warm[d] : nullptr,
        &timings[d]);
    ScatterShardBeliefs(shard, outcomes[d], options_.builder, &beliefs);
  };
  RunOnPool(
      dirty.size(), n_threads,
      [&](size_t d) { return plan.shards[dirty[d]].triple_map.size(); },
      run_dirty);
  // Clean shards: scatter the cached beliefs.
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    if (reused[s] != nullptr) {
      ScatterShardBeliefs(plan.shards[s], reused[s]->beliefs,
                          options_.builder, &beliefs);
    }
  }
  local_stats.shard_seconds = watch.ElapsedSeconds();

  // ---- merge + global decode ----------------------------------------------
  watch.Reset();
  span.emplace("decode");
  LbpResult diagnostics;
  diagnostics.converged = true;
  {
    size_t d = 0;
    for (size_t s = 0; s < plan.shards.size(); ++s) {
      if (reused[s] != nullptr) {
        MergeShardDiagnostics(reused[s]->beliefs.diagnostics, &diagnostics);
      } else {
        MergeShardDiagnostics(outcomes[d].diagnostics, &diagnostics);
        local_stats.variables += outcomes[d].variables;
        local_stats.factors += outcomes[d].factors;
        local_stats.message_updates += outcomes[d].diagnostics.message_updates;
        local_stats.residual_pops += outcomes[d].diagnostics.residual_pops;
        local_stats.sweeps_skipped += outcomes[d].diagnostics.sweeps_skipped;
        local_stats.graph_seconds += timings[d].graph_seconds;
        local_stats.infer_seconds += timings[d].infer_seconds;
        ++d;
      }
    }
  }
  // Donate the previous result's marginal storage so the canonical list
  // rebuild assigns in place (see AssembleJoclResult).
  diagnostics.marginals = std::move(result_.diagnostics.marginals);
  result_ = AssembleJoclResult(problem, beliefs, options_, weights_,
                               std::move(diagnostics), requested_threads);
  span.reset();
  local_stats.decode_seconds = watch.ElapsedSeconds();

  // ---- persist state + store upkeep ---------------------------------------
  // Partition snapshot for the next batch's delta classification: clean
  // shards donate their triple vectors outright (the plan is dead after
  // this block), only the few dirty shards copy theirs — the bodies move
  // into the store.
  previous_components_.clear();
  previous_components_.resize(plan.shards.size());
  for (size_t s = 0; s < plan.shards.size(); ++s) {
    if (reused[s] != nullptr) {
      previous_components_[s] = std::move(plan.shards[s].problem.triples);
    }
  }
  for (size_t d = 0; d < dirty.size(); ++d) {
    ProblemShard& shard = plan.shards[dirty[d]];
    previous_components_[dirty[d]] = shard.problem.triples;
    std::vector<size_t> key = shard.problem.triples;
    SolvedComponent& entry = store_[std::move(key)];
    entry.problem = std::move(shard.problem);
    entry.beliefs = std::move(outcomes[d]);
    entry.last_used = generation_;
  }
  for (auto it = store_.begin(); it != store_.end();) {
    if (generation_ - it->second.last_used > session_.stale_retention) {
      it = store_.erase(it);
    } else {
      ++it;
    }
  }
  problem_ = std::move(problem);
  beliefs_ = std::move(beliefs);

  JOCL_LOG(kDebug) << "session: generation " << generation_ << ", "
                   << local_stats.dirty_shards << "/" << local_stats.shards
                   << " dirty shards (" << delta.merged << " merged, "
                   << delta.split << " split), "
                   << local_stats.cache_new_phrases << " new phrases";
  MirrorSessionStats(local_stats, generation_);
  if (stats != nullptr) *stats = local_stats;
  if (publish_callback_) {
    ScopedSpan publish_span("publish");
    publish_callback_(*this);
  }
  return Status::OK();
}

}  // namespace jocl
