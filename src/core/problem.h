#ifndef JOCL_CORE_PROBLEM_H_
#define JOCL_CORE_PROBLEM_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/signals.h"
#include "data/dataset.h"
#include "kb/curated_kb.h"

namespace jocl {

/// \brief A candidate NP (RP) pair that survived blocking: two distinct
/// surfaces of one role plus their IDF token-overlap similarity.
struct SurfacePair {
  size_t a = 0;  ///< surface index (role-local), a < b
  size_t b = 0;
  double idf = 0.0;
  /// True when the pair exists only because the two surfaces share a top
  /// candidate entity. Consistency factors must not attach to such pairs:
  /// rewarding them for agreeing on the shared candidate would be
  /// circular (the agreement is why they were blocked).
  bool candidate_blocked = false;
};

/// \brief Options for problem construction.
struct ProblemOptions {
  /// Pair variables are generated for pairs whose IDF token-overlap
  /// similarity reaches this (paper §4.1: threshold 0.5).
  double pair_threshold = 0.5;
  /// Additionally generate pair variables for surface pairs that share a
  /// top candidate entity/relation or a PPDB cluster, even below the IDF
  /// threshold. This keeps the paper's blocking semantics (variables exist
  /// where co-reference is plausible) while letting the joint model act on
  /// token-disjoint aliases (acronyms, nicknames, synonym verbs) — without
  /// it, no consistency factor could ever merge them.
  bool side_info_blocking = true;
  /// How many top candidates participate in candidate-overlap blocking.
  size_t blocking_candidates = 2;
  /// Embedding-neighbor blocking: surface pairs whose phrase-embedding
  /// cosine reaches this are also admitted (0 disables; the default).
  /// Disabled because averaged word vectors are anisotropic: pairs
  /// selected by high cosine then carry that same high value as their
  /// `f_emb` feature, a selection bias that inflates false merges.
  double emb_blocking_threshold = 0.0;
  /// Hard cap on embedding-blocked pairs per role.
  size_t max_emb_pairs = 20000;
  /// Candidate entities/relations per mention (linking variable states are
  /// this many plus NIL).
  size_t max_candidates = 5;
  /// Blocking tokens shared by more than this many surfaces are ignored
  /// (standard blocking practice; such pairs cannot reach the threshold
  /// through one frequent token anyway).
  size_t max_block_size = 100;
  /// Hard cap on pair variables per role (kept by descending similarity,
  /// deterministic tie-break) to bound graph size on huge inputs.
  size_t max_pairs_per_role = 60000;
};

/// \brief Role-separated, surface-deduplicated view of (a subset of) an
/// OKB, ready for factor-graph construction.
///
/// The paper defines pair variables per triple pair; mentions sharing a
/// surface form would duplicate identical variables (same features, same
/// neighbors), so the problem space collapses each role's mentions onto
/// distinct surfaces. Linking variables stay per-triple (per mention).
struct JoclProblem {
  /// The triple indices (into the owning data set) this problem covers, in
  /// ascending order; all per-triple vectors below are aligned with it.
  std::vector<size_t> triples;

  // Distinct surfaces per role, first-appearance order.
  std::vector<std::string> subject_surfaces;
  std::vector<std::string> predicate_surfaces;
  std::vector<std::string> object_surfaces;

  // Per-triple surface indices (into the vectors above).
  std::vector<size_t> subject_of;
  std::vector<size_t> predicate_of;
  std::vector<size_t> object_of;

  // Representative (first) local triple index per surface.
  std::vector<size_t> subject_rep;
  std::vector<size_t> predicate_rep;
  std::vector<size_t> object_rep;

  // Blocked candidate pairs per role.
  std::vector<SurfacePair> subject_pairs;
  std::vector<SurfacePair> predicate_pairs;
  std::vector<SurfacePair> object_pairs;

  // Linking candidates per surface (shared across its mentions).
  std::vector<std::vector<EntityCandidate>> subject_candidates;
  std::vector<std::vector<RelationCandidate>> predicate_candidates;
  std::vector<std::vector<EntityCandidate>> object_candidates;

  /// Total NP mentions (2 per covered triple).
  size_t np_mention_count() const { return triples.size() * 2; }
  /// Total RP mentions (1 per covered triple).
  size_t rp_mention_count() const { return triples.size(); }
};

/// \brief Cross-build memo of the pure per-surface lookups inside
/// BuildProblem (candidate generation against the fixed CKB). Memoized
/// builds return exactly the same problem as unmemoized ones — the memo
/// only skips recomputing `EntityCandidates` / `RelationCandidates` for
/// surfaces seen in an earlier build. `JoclSession` keeps one across
/// ingestion batches, which is most of what makes a streaming problem
/// rebuild cheap. Valid only while the dataset's CKB and the
/// `max_candidates` option stay fixed (both are per-session constants).
struct ProblemCache {
  std::unordered_map<std::string, std::vector<EntityCandidate>>
      entity_candidates;
  std::unordered_map<std::string, std::vector<RelationCandidate>>
      relation_candidates;
  /// Lifetime lookup counters, maintained by BuildProblem: a lookup that
  /// found a memoized surface counts as a hit, one that had to run
  /// candidate generation as a miss. `SessionStats` reports per-batch
  /// deltas so incremental-ingestion regressions show up in logs.
  size_t hits = 0;
  size_t misses = 0;
};

/// \brief Builds the problem for the given triple subset (ascending order
/// not required; it is sorted internally). \p cache, when non-null,
/// memoizes per-surface candidate generation across builds (see
/// ProblemCache).
JoclProblem BuildProblem(const Dataset& dataset, const SignalBundle& signals,
                         const std::vector<size_t>& triple_subset,
                         const ProblemOptions& options = {},
                         ProblemCache* cache = nullptr);

}  // namespace jocl

#endif  // JOCL_CORE_PROBLEM_H_
