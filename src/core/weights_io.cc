#include "core/weights_io.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "core/feature_config.h"
#include "util/string_util.h"

namespace jocl {
namespace {

/// The header's magic first cell. The remaining cells are the
/// WeightLayout names in order — the load-time proof that the file was
/// written by this feature layout.
constexpr char kHeaderMagic[] = "# jocl-weights";

}  // namespace

Status SaveWeights(const std::vector<double>& weights,
                   const std::string& path) {
  if (weights.size() != WeightLayout::kCount) {
    return Status::InvalidArgument(
        "weight vector must have WeightLayout::kCount entries");
  }
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out << kHeaderMagic;
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    out << '\t' << WeightLayout::Name(k);
  }
  out << '\n';
  // Shortest-round-trip std::to_chars, not stream insertion: stream
  // formatting honors the global locale (a comma decimal point under
  // e.g. de_DE corrupts the TSV), to_chars is locale-independent by
  // specification, so saved weight files are stable across environments.
  char buffer[64];
  for (size_t k = 0; k < weights.size(); ++k) {
    const auto [ptr, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), weights[k]);
    if (ec != std::errc()) {
      return Status::Internal("cannot format weight " +
                              WeightLayout::Name(k));
    }
    out << WeightLayout::Name(k) << '\t';
    out.write(buffer, ptr - buffer);
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<double>> LoadWeights(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::unordered_map<std::string, size_t> index;
  for (size_t k = 0; k < WeightLayout::kCount; ++k) {
    index.emplace(WeightLayout::Name(k), k);
  }
  std::vector<double> weights(WeightLayout::kCount, 1.0);
  std::vector<uint8_t> seen(WeightLayout::kCount, 0);
  bool has_header = false;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only the layout header is a recognized comment; validate it cell
      // by cell so a reordered or extended feature set names its first
      // point of divergence instead of misassigning silently.
      std::vector<std::string> cells = Split(line, '\t');
      if (cells.empty() || cells[0] != kHeaderMagic) {
        return Status::IOError("unrecognized comment at line " +
                               std::to_string(line_number) +
                               " (expected a '" + kHeaderMagic +
                               "' header)");
      }
      if (line_number != 1) {
        return Status::IOError("weights header must be the first line");
      }
      if (cells.size() != WeightLayout::kCount + 1) {
        return Status::IOError(
            "weights header names " + std::to_string(cells.size() - 1) +
            " feature columns, this build has " +
            std::to_string(WeightLayout::kCount) +
            " — the file was written by a different feature set");
      }
      for (size_t k = 0; k < WeightLayout::kCount; ++k) {
        if (cells[k + 1] != WeightLayout::Name(k)) {
          return Status::IOError(
              "weights header column " + std::to_string(k) + " is '" +
              cells[k + 1] + "', this build expects '" +
              WeightLayout::Name(k) +
              "' — the file was written by a reordered feature set");
        }
      }
      has_header = true;
      continue;
    }
    std::vector<std::string> cells = Split(line, '\t');
    if (cells.size() != 2) {
      return Status::IOError("malformed weights line " +
                             std::to_string(line_number));
    }
    auto it = index.find(cells[0]);
    if (it == index.end()) {
      return Status::IOError("unknown weight name '" + cells[0] + "'");
    }
    // from_chars mirrors to_chars above: locale-independent, and it
    // must consume the whole cell (stod would accept "1.5garbage").
    double value = 0.0;
    const char* begin = cells[1].data();
    const char* end = begin + cells[1].size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc() || ptr != end) {
      return Status::IOError("non-numeric weight at line " +
                             std::to_string(line_number));
    }
    weights[it->second] = value;
    seen[it->second] = 1;
  }
  if (has_header) {
    // The header promises the full set; a hole means the file was
    // truncated or hand-edited. Headerless legacy files stay lenient
    // (missing entries keep the 1.0 uniform prior).
    for (size_t k = 0; k < WeightLayout::kCount; ++k) {
      if (!seen[k]) {
        return Status::IOError("weights file has a header but no value for '" +
                               WeightLayout::Name(k) + "'");
      }
    }
  }
  return weights;
}

std::string FormatWeightReport(const std::vector<double>& weights) {
  std::vector<size_t> order(weights.size());
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double da = std::abs(weights[a] - 1.0);
    double db = std::abs(weights[b] - 1.0);
    if (da != db) return da > db;
    return a < b;
  });
  std::ostringstream out;
  out.precision(4);
  out << std::fixed;
  for (size_t k : order) {
    out << WeightLayout::Name(k) << " = " << weights[k] << '\n';
  }
  return out.str();
}

}  // namespace jocl
