#ifndef JOCL_CORE_JOCL_H_
#define JOCL_CORE_JOCL_H_

#include <cstddef>
#include <vector>

#include "core/graph_builder.h"
#include "core/problem.h"
#include "core/signals.h"
#include "graph/learner.h"

namespace jocl {

/// \brief End-to-end configuration of the JOCL pipeline.
struct JoclOptions {
  ProblemOptions problem;
  GraphBuilderOptions builder;
  /// Weight learning (paper §3.4): gradient ascent at lr 0.05 with
  /// LBP-approximated expectations.
  LearnerOptions learner;
  /// Inference-time LBP (paper: converges within 20 sweeps).
  LbpOptions inference;
  /// Inference backend for the joint pass. The default component-parallel
  /// LBP produces marginals identical to sequential LBP (components are
  /// independent sub-problems), so this is purely an execution choice;
  /// kExact exists for tiny diagnostic problems.
  InferenceBackend inference_backend = InferenceBackend::kParallelLbp;
  /// Learning-graph size cap: the validation split is subsampled to at most
  /// this many triples (deterministically) to bound training cost.
  size_t max_learning_triples = 300;
  /// Conflict resolution (§3.5) only fires for pairs whose same-meaning
  /// marginal is at least this confident; at 0.5 it reduces to the paper's
  /// bare argmax rule, higher values resolve only confident conflicts.
  double conflict_confidence = 0.75;
  /// Shard-level worker threads of the end-to-end runtime (0 = one per
  /// hardware thread, 1 = sequential). Purely an execution choice: the
  /// runtime's output is byte-identical for every setting.
  size_t runtime_threads = 0;
  /// Shard count of the runtime: 0 = one shard per independent
  /// sub-problem, 1 = the monolithic single-graph run, n = sub-problems
  /// packed into n shards. Also purely an execution choice.
  size_t runtime_shards = 0;
  uint64_t seed = 17;

  JoclOptions() {
    learner.learning_rate = 0.05;  // paper §4.1
    learner.iterations = 15;
    learner.l2 = 0.08;             // stay close to the uniform prior
    learner.lbp.max_iterations = 8;
    learner.backend = InferenceBackend::kParallelLbp;
    learner.lbp.num_threads = 0;   // component-parallel, auto-sized
    inference.max_iterations = 20;
    inference.num_threads = 0;
  }

  /// Table 4 variant "JOCLcano": canonicalization factors only.
  static JoclOptions CanonicalizationOnly();
  /// Table 4 variant "JOCLlink": linking factors only.
  static JoclOptions LinkingOnly();
  /// Full JOCL without the consistency factors (no interaction), used to
  /// isolate the interaction's contribution.
  static JoclOptions WithoutConsistency();
};

/// \brief Joint output of the pipeline over a triple subset.
///
/// Mention order: NP mentions are (subject of t0, object of t0, subject of
/// t1, ...) over the subset's triples in ascending-triple order; RP
/// mentions are one per triple in the same order.
struct JoclResult {
  /// Canonicalization: cluster label per NP mention.
  std::vector<size_t> np_cluster;
  /// Cluster label per RP mention.
  std::vector<size_t> rp_cluster;
  /// Linking: CKB entity id (or kNilId) per NP mention.
  std::vector<int64_t> np_link;
  /// CKB relation id (or kNilId) per RP mention.
  std::vector<int64_t> rp_link;
  /// The triples covered, ascending (mention vectors align with these).
  std::vector<size_t> triples;
  /// LBP diagnostics of the inference pass.
  LbpResult diagnostics;
  /// Weights used at inference time.
  std::vector<double> weights;
};

/// \brief The JOCL pipeline (paper §3): build the joint factor graph over
/// an OKB + CKB, learn shared weights on the labeled validation split, run
/// staged LBP, decode marginals, and resolve canonicalization/linking
/// conflicts.
///
/// Infer() is a thin wrapper over the sharded `JoclRuntime`
/// (core/runtime.h): the problem is partitioned into independent
/// sub-problems that run build→compile→infer→decode on a worker pool over
/// a precomputed `SignalCache`, then merge into globally stable labels.
class Jocl {
 public:
  explicit Jocl(JoclOptions options = {});

  /// Uniform initial weights (1.0 everywhere) — the weights used when no
  /// validation data exists.
  static std::vector<double> DefaultWeights();

  /// Learns weights from `dataset.validation_triples` (paper protocol:
  /// the 20%-of-entities ReVerb45K split) on the sharded learning runtime
  /// (`ShardedLearner`, core/sharded_learner.h) — component-parallel
  /// expectation passes under `runtime_threads` / `runtime_shards`, with
  /// byte-identical weights for every setting. Returns DefaultWeights()
  /// when the data set has no validation split.
  Result<std::vector<double>> LearnWeights(const Dataset& dataset,
                                           const SignalBundle& signals) const;

  /// Joint inference over the given triples with the given weights (empty
  /// = DefaultWeights()).
  Result<JoclResult> Infer(const Dataset& dataset,
                           const SignalBundle& signals,
                           const std::vector<size_t>& triple_subset,
                           std::vector<double> weights = {}) const;

  /// Convenience: LearnWeights on the validation split then Infer on the
  /// given subset.
  Result<JoclResult> Run(const Dataset& dataset, const SignalBundle& signals,
                         const std::vector<size_t>& triple_subset) const;

  const JoclOptions& options() const { return options_; }

 private:
  JoclOptions options_;
};

}  // namespace jocl

#endif  // JOCL_CORE_JOCL_H_
