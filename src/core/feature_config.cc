#include "core/feature_config.h"

namespace jocl {

std::string WeightLayout::Name(size_t weight) {
  static const char* kNames[kCount] = {
      "alpha1.idf",  "alpha1.emb",  "alpha1.ppdb", "alpha1.cand",
      "alpha2.idf",  "alpha2.emb",  "alpha2.ppdb", "alpha2.amie",
      "alpha2.kbp",
      "alpha3.idf",  "alpha3.emb",  "alpha3.ppdb", "alpha3.cand",
      "alpha4.pop",  "alpha4.emb",  "alpha4.ppdb",
      "alpha5.ngram", "alpha5.ld",  "alpha5.emb",  "alpha5.ppdb",
      "alpha6.pop",  "alpha6.emb",  "alpha6.ppdb",
      "beta1.trans_s", "beta2.trans_p", "beta3.trans_o",
      "beta4.fact",
      "beta5.cons_s", "beta6.cons_p", "beta7.cons_o",
  };
  if (weight >= kCount) return "unknown";
  return kNames[weight];
}

FeatureMask FeatureMask::Single() {
  FeatureMask mask;
  mask.np_emb = false;
  mask.np_ppdb = false;
  mask.np_cand = false;
  mask.rp_amie = false;
  mask.rp_kbp = false;
  mask.link_emb = false;
  mask.link_ppdb = false;
  mask.rel_ld = false;
  mask.rel_emb = false;
  mask.rel_ppdb = false;
  return mask;
}

FeatureMask FeatureMask::Double() {
  FeatureMask mask;
  mask.np_ppdb = false;
  mask.np_cand = false;
  mask.rp_amie = false;
  mask.rp_kbp = false;
  mask.link_ppdb = false;
  mask.rel_ld = false;
  mask.rel_ppdb = false;
  return mask;
}

FeatureMask FeatureMask::All() { return FeatureMask(); }

}  // namespace jocl
