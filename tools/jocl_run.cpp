// jocl_run — end-to-end command-line driver.
//
// Modes:
//   jocl_run generate <reverb|nytimes> <scale> <out.tsv>
//       Generate a synthetic benchmark and write its triples + gold TSV.
//   jocl_run demo [scale] [--threads N] [--shards N]
//       Generate, learn, infer and print evaluation + weight report.
//   jocl_run weights <out.tsv> [scale]
//       Learn weights on a generated validation split and save them.
//
// Runtime flags (accepted anywhere after the mode):
//   --threads N   shard-level worker threads (0 = hardware, default)
//   --shards N    shard count (0 = one per independent sub-problem)
// Both are pure execution knobs: the result is byte-identical for every
// setting (see core/runtime.h).
//
// Kernel flags (demo mode):
//   --schedule staged|residual   LBP message schedule (default staged;
//                                residual is approximate — it stops on a
//                                convergence certificate, not a fixed
//                                sweep count)
//   --kernel vectorized|scalar   message-update kernel (byte-identical;
//                                scalar is the reference baseline)
//
// Tracing (demo and weights modes):
//   --trace-out PATH   dump the pipeline's spans as Chrome trace-event
//                      JSON (open in chrome://tracing or Perfetto);
//                      byte-identical across runs modulo timestamps
//
// The TSV format is documented in data/dataset_io.h. Real deployments
// would load their own triples with LoadTriplesTsv and construct a
// CuratedKb from their KB dump; the synthetic path exists so the binary
// is usable out of the box.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/jocl.h"
#include "core/runtime.h"
#include "core/weights_io.h"
#include "data/dataset_io.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"
#include "obs/trace.h"

using namespace jocl;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  jocl_run generate <reverb|nytimes> <scale> <out.tsv>\n"
               "  jocl_run demo [scale] [--threads N] [--shards N]\n"
               "               [--schedule staged|residual]"
               " [--kernel vectorized|scalar]"
               " [--trace-out PATH]\n"
               "  jocl_run weights <out.tsv> [scale] [--trace-out PATH]\n");
  return 2;
}

// Strips --threads/--shards (either "--flag N" or "--flag=N") from argv,
// returning the remaining positional count.
int ParseRuntimeFlags(int argc, char** argv, RuntimeOptions* runtime) {
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    auto value_of = [&](const char* flag, size_t* out) {
      size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) != 0) return false;
      if (argv[i][len] == '=') {
        *out = static_cast<size_t>(std::atoll(argv[i] + len + 1));
        return true;
      }
      if (argv[i][len] == '\0' && i + 1 < argc) {
        *out = static_cast<size_t>(std::atoll(argv[++i]));
        return true;
      }
      return false;
    };
    if (value_of("--threads", &runtime->num_threads)) continue;
    if (value_of("--shards", &runtime->max_shards)) continue;
    argv[kept++] = argv[i];
  }
  return kept;
}

// Strips --schedule/--kernel (either "--flag VALUE" or "--flag=VALUE")
// from argv, returning the remaining positional count. Unknown values
// warn and leave the option at its default.
int ParseKernelFlags(int argc, char** argv, LbpOptions* lbp) {
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    auto value_of = [&](const char* flag, const char** out) {
      size_t len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, len) != 0) return false;
      if (argv[i][len] == '=') {
        *out = argv[i] + len + 1;
        return true;
      }
      if (argv[i][len] == '\0' && i + 1 < argc) {
        *out = argv[++i];
        return true;
      }
      return false;
    };
    const char* value = nullptr;
    if (value_of("--schedule", &value)) {
      if (std::strcmp(value, "residual") == 0) {
        lbp->schedule = LbpSchedule::kResidual;
        continue;
      }
      if (std::strcmp(value, "staged") == 0) {
        lbp->schedule = LbpSchedule::kStaged;
        continue;
      }
      std::fprintf(stderr, "unknown --schedule value: %s\n", value);
      continue;
    } else if (value_of("--kernel", &value)) {
      if (std::strcmp(value, "scalar") == 0) {
        lbp->kernel = LbpKernel::kScalarReference;
        continue;
      }
      if (std::strcmp(value, "vectorized") == 0) {
        lbp->kernel = LbpKernel::kVectorized;
        continue;
      }
      std::fprintf(stderr, "unknown --kernel value: %s\n", value);
      continue;
    }
    argv[kept++] = argv[i];
  }
  return kept;
}

// Strips --trace-out (either "--trace-out PATH" or "--trace-out=PATH")
// from argv, returning the remaining positional count. An empty path
// leaves tracing off.
int ParseTraceFlag(int argc, char** argv, std::string* path) {
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      path->assign(argv[i] + 12);
      continue;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      path->assign(argv[++i]);
      continue;
    }
    argv[kept++] = argv[i];
  }
  return kept;
}

// Uninstalls the session (no span may still be open), then writes the
// dump. Shared exit path for demo and weights modes.
int WriteTrace(std::optional<ScopedTraceSession>* session,
               const TraceRecorder& recorder, const std::string& path) {
  if (path.empty()) return 0;
  session->reset();
  if (!recorder.WriteChromeJson(path)) {
    std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu trace spans to %s\n", recorder.Spans().size(),
              path.c_str());
  return 0;
}

Dataset Generate(const char* kind, double scale) {
  if (std::strcmp(kind, "nytimes") == 0) {
    return GenerateNYTimes2018(scale).MoveValueOrDie();
  }
  return GenerateReVerb45K(scale).MoveValueOrDie();
}

int RunGenerate(int argc, char** argv) {
  if (argc < 5) return Usage();
  double scale = std::atof(argv[3]);
  if (scale <= 0) scale = 1.0;
  Dataset ds = Generate(argv[2], scale);
  Status st = SaveTriplesTsv(ds, argv[4]);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu triples to %s\n", ds.okb.size(), argv[4]);
  return 0;
}

int RunDemo(int argc, char** argv) {
  RuntimeOptions runtime_options;
  argc = ParseRuntimeFlags(argc, argv, &runtime_options);
  JoclOptions jocl_options;
  argc = ParseKernelFlags(argc, argv, &jocl_options.inference);
  std::string trace_path;
  argc = ParseTraceFlag(argc, argv, &trace_path);
  TraceRecorder recorder;
  std::optional<ScopedTraceSession> trace;
  if (!trace_path.empty()) trace.emplace(&recorder);
  double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
  std::printf("generating ReVerb45K-like benchmark (scale %.2f)...\n", scale);
  Dataset ds = GenerateReVerb45K(scale).MoveValueOrDie();
  std::printf("building signals (IDF, word2vec, AMIE, KBP)...\n");
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();

  Jocl jocl(jocl_options);
  std::printf("learning weights on the validation split...\n");
  std::vector<double> weights = jocl.LearnWeights(ds, sig).MoveValueOrDie();
  std::printf("running joint inference over %zu test triples...\n",
              ds.test_triples.size());
  JoclRuntime runtime(jocl.options(), runtime_options);
  RuntimeStats stats;
  JoclResult result =
      runtime.Infer(ds, sig, ds.test_triples, weights, &stats)
          .MoveValueOrDie();
  // Signal-cache build and graph build are separate line items (and the
  // shard stage splits into graph building vs inference), so the stages a
  // streaming session skips or shrinks are visible here too.
  std::printf(
      "runtime: %zu independent sub-problems in %zu shards\n"
      "  problem build   %.2fs\n"
      "  signal cache    %.2fs\n"
      "  partition       %.2fs\n"
      "  shard stage     %.2fs wall (graph build %.2fs + inference %.2fs, "
      "summed over workers)\n"
      "  decode          %.2fs\n",
      stats.components, stats.shards, stats.problem_seconds,
      stats.cache_seconds, stats.partition_seconds, stats.shard_seconds,
      stats.graph_seconds, stats.infer_seconds, stats.decode_seconds);
  std::printf("  kernel          %zu message updates", stats.message_updates);
  if (jocl_options.inference.schedule == LbpSchedule::kResidual) {
    std::printf(", %zu residual pops, %zu sweeps' budget unspent",
                stats.residual_pops, stats.sweeps_skipped);
  } else if (stats.sweeps_skipped > 0) {
    std::printf(", %zu sweeps saved by early convergence",
                stats.sweeps_skipped);
  }
  std::printf("\n");

  // The evaluation/report stage is the demo's "publish": what a
  // deployment does with the finished result.
  std::optional<ScopedSpan> publish_span;
  publish_span.emplace("publish");
  std::vector<size_t> gold_np;
  std::vector<int64_t> gold_entities;
  for (size_t t : ds.test_triples) {
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2]));
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2 + 1]));
    gold_entities.push_back(ds.gold_subject_entity[t]);
    gold_entities.push_back(ds.gold_object_entity[t]);
  }
  ClusteringScore score = EvaluateClustering(result.np_cluster, gold_np);
  std::printf(
      "\nNP canonicalization: macro %.3f  micro %.3f  pairwise %.3f  "
      "average %.3f\n",
      score.macro.f1, score.micro.f1, score.pairwise.f1, score.average_f1);
  std::printf("entity linking accuracy: %.3f\n",
              LinkingAccuracy(result.np_link, gold_entities));
  std::printf("LBP sweeps: %zu (converged: %s, certificate: max residual "
              "%.2e at stop)\n",
              result.diagnostics.iterations,
              result.diagnostics.converged ? "yes" : "no",
              result.diagnostics.final_residual);
  std::printf("\nmost-adjusted weights:\n%s",
              FormatWeightReport(weights).c_str());
  publish_span.reset();
  return WriteTrace(&trace, recorder, trace_path);
}

int RunWeights(int argc, char** argv) {
  std::string trace_path;
  argc = ParseTraceFlag(argc, argv, &trace_path);
  if (argc < 3) return Usage();
  TraceRecorder recorder;
  std::optional<ScopedTraceSession> trace;
  if (!trace_path.empty()) trace.emplace(&recorder);
  double scale = argc > 3 ? std::atof(argv[3]) : 0.5;
  Dataset ds = GenerateReVerb45K(scale).MoveValueOrDie();
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  Jocl jocl;
  std::vector<double> weights = jocl.LearnWeights(ds, sig).MoveValueOrDie();
  {
    ScopedSpan publish_span("publish");
    Status st = SaveWeights(weights, argv[2]);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("saved %zu weights to %s\n", weights.size(), argv[2]);
  return WriteTrace(&trace, recorder, trace_path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "generate") == 0) return RunGenerate(argc, argv);
  if (std::strcmp(argv[1], "demo") == 0) return RunDemo(argc, argv);
  if (std::strcmp(argv[1], "weights") == 0) return RunWeights(argc, argv);
  return Usage();
}
