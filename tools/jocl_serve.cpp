// jocl_serve — the canonical-KB serving front end (src/serve).
//
// Serves a CanonStore over HTTP/1.1 on 127.0.0.1. Two data modes:
//
//   * snapshot mode (--snapshot PATH): load a snapshot produced by
//     jocl_stream --snapshot-out or SaveSnapshot, publish it, serve.
//   * live-ingestion mode (default): generate a ReVerb45K-like
//     benchmark, replay its test triples as ingestion batches through a
//     JoclSession, and republish a fresh store after every batch while
//     readers keep hitting the old one — the RCU swap never blocks them.
//
// And two topologies:
//
//   * single (default): one CanonServer serving the monolithic store.
//   * distributed (--shards N [--router]): every publish partitions the
//     store with BuildShardedCanonStores and hands shard k to its own
//     CanonServer on an ephemeral port; with --router a CanonRouter
//     fronts them on the requested --port, fanning /lookup and /link by
//     surface hash and broadcasting /cluster.
//
// Usage:
//   jocl_serve [scale] [--port N] [--workers N] [--batches N]
//              [--shards N] [--router]
//              [--snapshot PATH] [--snapshot-out PATH]
//              [--serve-seconds N] [--retrain]
//              [--idle-timeout-ms N] [--no-prerender]
//              [--trace-out PATH]
//
//   scale             workload scale in live mode (default 0.2)
//   --port N          TCP port (default 0 = ephemeral; printed on start)
//   --workers N       epoll event-loop threads (default 4)
//   --shards N        partition each published store into N shard
//                     backends (default 1 = monolithic)
//   --router          front the shard backends with a CanonRouter on
//                     --port; its port prints first
//   --idle-timeout-ms N  close keep-alive connections idle this long
//                     (default 5000; slow partial requests get a 408)
//   --no-prerender    skip the pre-rendered response cache; every
//                     request goes through the allocating renderer
//   --batches N       ingestion batches in live mode (default 4)
//   --snapshot PATH   serve this snapshot instead of live ingestion
//   --snapshot-out P  in live mode, also save a snapshot after each batch
//   --serve-seconds N exit after N seconds of serving (default 0 = until
//                     SIGINT/SIGTERM)
//   --retrain         in live mode, after ingestion: learn weights on the
//                     validation split (ShardedLearner) and hot-swap them
//                     into the running session via UpdateWeights — the
//                     publish callback republishes the store while readers
//                     keep being served (learn → infer → serve)
//   --trace-out P     dump the ingestion/learning pipeline's spans as
//                     Chrome trace-event JSON on exit (serving itself is
//                     measured by /metrics histograms, not spans)
//
// Endpoints: /lookup?surface=S[&kind=np|rp], /cluster?id=N[&kind=..],
// /link?surface=S[&kind=..], /stats. See docs/serving.md.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "data/generator.h"
#include "obs/trace.h"
#include "serve/canon_store.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_store.h"
#include "serve/snapshot_io.h"
#include "util/stopwatch.h"

using namespace jocl;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintSample(const CanonStore& store) {
  if (store.np.surface_count() > 0) {
    const std::string surface(store.SurfaceText(CanonKind::kNp, 0));
    std::printf("sample surface: %s\n", surface.c_str());
    std::fflush(stdout);
  }
}

void PrintCounters(const char* label, const ServeCounters& counters) {
  std::printf("%s: served %llu requests (%llu ok, %llu not found, "
              "%llu bad, %llu unavailable), %llu publishes\n",
              label, static_cast<unsigned long long>(counters.requests),
              static_cast<unsigned long long>(counters.ok),
              static_cast<unsigned long long>(counters.not_found),
              static_cast<unsigned long long>(counters.bad_request),
              static_cast<unsigned long long>(counters.unavailable),
              static_cast<unsigned long long>(counters.publishes));
  std::printf("%s: event loop: %llu connections accepted, %llu keep-alive "
              "reuses, %llu timed out; cache %llu hits / %llu misses, "
              "%llu response bytes written\n",
              label,
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.connections_reused),
              static_cast<unsigned long long>(counters.connections_timed_out),
              static_cast<unsigned long long>(counters.cache_hits),
              static_cast<unsigned long long>(counters.cache_misses),
              static_cast<unsigned long long>(counters.writev_bytes));
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.2;
  size_t batches = 4;
  size_t serve_seconds = 0;
  size_t shards = 1;
  bool router_mode = false;
  bool retrain = false;
  std::string snapshot_in;
  std::string snapshot_out;
  std::string trace_out;
  ServeOptions serve_options;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* flag) -> const char* {
      const size_t flag_len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, flag_len) == 0 &&
          argv[i][flag_len] == '=') {
        return argv[i] + flag_len + 1;
      }
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (const char* v = value_of("--port")) {
      serve_options.port = std::atoi(v);
    } else if (const char* v = value_of("--workers")) {
      serve_options.num_workers = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--batches")) {
      batches = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--shards")) {
      shards = static_cast<size_t>(std::atoll(v));
      if (shards == 0) shards = 1;
    } else if (const char* v = value_of("--snapshot")) {
      snapshot_in = v;
    } else if (const char* v = value_of("--snapshot-out")) {
      snapshot_out = v;
    } else if (const char* v = value_of("--trace-out")) {
      trace_out = v;
    } else if (const char* v = value_of("--serve-seconds")) {
      serve_seconds = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--idle-timeout-ms")) {
      serve_options.idle_timeout_ms = std::atoi(v);
    } else if (std::strcmp(argv[i], "--no-prerender") == 0) {
      serve_options.prerender = false;
    } else if (std::strcmp(argv[i], "--router") == 0) {
      router_mode = true;
    } else if (std::strcmp(argv[i], "--retrain") == 0) {
      retrain = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0) scale = 0.2;
    }
  }
  if (batches == 0) batches = 1;
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  TraceRecorder recorder;
  std::optional<ScopedTraceSession> trace;
  if (!trace_out.empty()) trace.emplace(&recorder);

  // ---- topology ------------------------------------------------------------
  const bool distributed = router_mode || shards > 1;
  std::unique_ptr<CanonServer> single;
  std::vector<std::unique_ptr<CanonServer>> shard_servers;
  std::unique_ptr<CanonRouter> router;
  if (!distributed) {
    single = std::make_unique<CanonServer>(serve_options);
    Status status = single->Start();
    if (!status.ok()) return Fail(status);
    std::printf("listening on http://127.0.0.1:%d\n", single->port());
  } else {
    // Shard backends always bind ephemeral ports; --port belongs to the
    // router (or, without one, stays unused so two backends never race
    // for the same port).
    ServeOptions shard_options = serve_options;
    shard_options.port = 0;
    std::vector<int> shard_ports;
    for (size_t k = 0; k < shards; ++k) {
      shard_servers.push_back(std::make_unique<CanonServer>(shard_options));
      Status status = shard_servers.back()->Start();
      if (!status.ok()) return Fail(status);
      shard_ports.push_back(shard_servers.back()->port());
    }
    if (router_mode) {
      router = std::make_unique<CanonRouter>(shard_ports, serve_options);
      Status status = router->Start();
      if (!status.ok()) return Fail(status);
      std::printf("listening on http://127.0.0.1:%d\n", router->port());
      std::printf("router fronting %zu shard(s):", shards);
    } else {
      std::printf("listening on http://127.0.0.1:%d\n", shard_ports[0]);
      std::printf("%zu shard backend(s), no router:", shards);
    }
    for (size_t k = 0; k < shards; ++k) {
      std::printf(" %zu=http://127.0.0.1:%d", k, shard_ports[k]);
    }
    std::printf("\n");
  }
  std::printf("endpoints: /lookup?surface=S[&kind=np|rp]  "
              "/cluster?id=N  /link?surface=S  /stats\n");
  std::fflush(stdout);

  // Publishes one monolithic store generation to the active topology:
  // straight to the single server, or partitioned across the shard set.
  auto publish = [&](std::shared_ptr<const CanonStore> store) -> Status {
    if (!distributed) {
      single->Publish(std::move(store));
      return Status::OK();
    }
    Result<std::vector<CanonStore>> parts =
        BuildShardedCanonStores(*store, static_cast<uint32_t>(shards));
    JOCL_RETURN_NOT_OK(parts.status());
    std::vector<CanonStore> stores = parts.MoveValueOrDie();
    for (size_t k = 0; k < stores.size(); ++k) {
      shard_servers[k]->Publish(
          std::make_shared<const CanonStore>(std::move(stores[k])));
    }
    return Status::OK();
  };

  // ---- snapshot mode -------------------------------------------------------
  if (!snapshot_in.empty()) {
    Stopwatch watch;
    Result<CanonStore> loaded = LoadSnapshot(snapshot_in);
    if (!loaded.ok()) return Fail(loaded.status());
    auto store =
        std::make_shared<const CanonStore>(loaded.MoveValueOrDie());
    std::printf("loaded snapshot %s in %.3fs (%zu NP surfaces, "
                "%zu NP clusters, generation %llu)\n",
                snapshot_in.c_str(), watch.ElapsedSeconds(),
                store->np.surface_count(), store->np.cluster_count(),
                static_cast<unsigned long long>(store->generation));
    PrintSample(*store);
    Status published = publish(std::move(store));
    if (!published.ok()) return Fail(published);
  } else {
    // ---- live-ingestion mode ----------------------------------------------
    std::printf("generating ReVerb45K-like benchmark (scale %.2f)...\n",
                scale);
    std::fflush(stdout);
    static Dataset ds = GenerateReVerb45K(scale).MoveValueOrDie();
    static SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
    static JoclSession session(&ds, &sig);
    bool first_publish = true;
    session.SetPublishCallback([&](const JoclSession& s) {
      auto store = std::make_shared<const CanonStore>(BuildCanonStore(
          s.problem(), s.result(), ds.ckb, s.generation()));
      if (!snapshot_out.empty()) {
        size_t bytes = 0;
        Status save = SaveSnapshot(*store, snapshot_out, &bytes);
        if (!save.ok()) {
          std::fprintf(stderr, "snapshot save failed: %s\n",
                       save.ToString().c_str());
        } else {
          std::printf("  snapshot -> %s (%zu bytes)\n", snapshot_out.c_str(),
                      bytes);
        }
      }
      if (first_publish) {
        PrintSample(*store);
        first_publish = false;
      }
      Status published = publish(std::move(store));
      if (!published.ok()) {
        std::fprintf(stderr, "publish failed: %s\n",
                     published.ToString().c_str());
      }
    });
    const std::vector<size_t>& stream = ds.test_triples;
    for (size_t b = 0; b < batches && g_stop == 0; ++b) {
      const size_t begin = b * stream.size() / batches;
      const size_t end = (b + 1) * stream.size() / batches;
      std::vector<size_t> batch(stream.begin() + begin,
                                stream.begin() + end);
      SessionStats stats;
      Stopwatch watch;
      Status status = session.AddTriples(batch, &stats);
      if (!status.ok()) return Fail(status);
      std::printf("batch %zu/%zu: %zu triples in %.3fs "
                  "(%zu/%zu shards dirty) -> published generation %zu\n",
                  b + 1, batches, batch.size(), watch.ElapsedSeconds(),
                  stats.dirty_shards, stats.shards, session.generation());
      std::fflush(stdout);
    }

    // ---- retrain + hot-swap ------------------------------------------------
    // Readers keep hitting the current store the whole time: learning runs
    // beside the server, and UpdateWeights republishes through the same
    // non-blocking RCU swap as an ingestion batch.
    if (retrain && g_stop == 0) {
      std::printf("retraining on the validation split (%zu triples)...\n",
                  ds.validation_triples.size());
      std::fflush(stdout);
      Result<std::vector<double>> weights = Jocl().LearnWeights(ds, sig);
      if (!weights.ok()) return Fail(weights.status());
      SessionStats stats;
      Stopwatch watch;
      Status status = session.UpdateWeights(weights.MoveValueOrDie(), &stats);
      if (!status.ok()) return Fail(status);
      std::printf("retrained -> hot-swapped weights, re-inferred %zu shards "
                  "in %.3fs, published generation %zu\n",
                  stats.dirty_shards, watch.ElapsedSeconds(),
                  session.generation());
      std::fflush(stdout);
    }
  }

  const std::string serve_note =
      serve_seconds > 0 ? " for " + std::to_string(serve_seconds) + "s"
                        : std::string(" until SIGINT");
  std::printf("serving%s...\n", serve_note.c_str());
  std::fflush(stdout);
  Stopwatch uptime;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (serve_seconds > 0 && uptime.ElapsedSeconds() >= serve_seconds) break;
  }
  if (!distributed) {
    const ServeCounters counters = single->counters();
    single->Stop();
    PrintCounters("server", counters);
  } else {
    if (router) {
      const ServeCounters counters = router->counters();
      router->Stop();
      PrintCounters("router", counters);
    }
    for (size_t k = 0; k < shard_servers.size(); ++k) {
      const ServeCounters counters = shard_servers[k]->counters();
      shard_servers[k]->Stop();
      const std::string label = "shard " + std::to_string(k);
      PrintCounters(label.c_str(), counters);
    }
  }
  if (!trace_out.empty()) {
    trace.reset();  // no span may still be open when we dump
    if (!recorder.WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace spans to %s\n", recorder.Spans().size(),
                trace_out.c_str());
  }
  return 0;
}
