#!/usr/bin/env sh
# Compare a freshly generated BENCH_incremental.json against the committed
# baseline and warn when any gated metric regresses by more than 20%.
#
# Usage: tools/check_bench_trend.sh [--strict] <new.json> [baseline.json]
#
#   --strict   exit non-zero when a regression is detected (default: warn only)
#
# Gated metrics (top-level keys of BENCH_incremental.json):
#   longtail_speedup_vs_full        higher is better
#   longtail_speedup_vs_legacy      higher is better
#   head_residual_speedup_vs_full   higher is better
#   longtail_frontend_share         lower is better
#
# No jq in the CI image: the JSON is written by bench_incremental with one
# top-level scalar per line, so grep/awk extraction is reliable.

set -eu

STRICT=0
if [ "${1:-}" = "--strict" ]; then
  STRICT=1
  shift
fi

NEW="${1:-}"
BASE="${2:-$(dirname "$0")/../bench/BENCH_incremental.baseline.json}"

if [ -z "$NEW" ] || [ ! -f "$NEW" ]; then
  echo "usage: $0 [--strict] <new.json> [baseline.json]" >&2
  exit 2
fi
if [ ! -f "$BASE" ]; then
  echo "check_bench_trend: baseline $BASE not found; nothing to compare" >&2
  exit 0
fi

extract() {
  # extract <file> <key>: pull the numeric value of a top-level "key": entry.
  grep -o "\"$2\"[[:space:]]*:[[:space:]]*[0-9.eE+-]*" "$1" | head -n 1 |
    awk -F: '{gsub(/[[:space:]]/, "", $2); print $2}'
}

REGRESSIONS=0

check() {
  # check <key> <direction>: direction is "higher" or "lower" (better).
  key="$1"
  dir="$2"
  base_val=$(extract "$BASE" "$key")
  new_val=$(extract "$NEW" "$key")
  if [ -z "$base_val" ] || [ -z "$new_val" ]; then
    echo "check_bench_trend: $key missing from baseline or new run; skipping"
    return 0
  fi
  verdict=$(awk -v b="$base_val" -v n="$new_val" -v d="$dir" 'BEGIN {
    if (b == 0) { print "ok"; exit }
    if (d == "higher") delta = (b - n) / b;  # drop in a higher-is-better metric
    else              delta = (n - b) / b;  # rise in a lower-is-better metric
    if (delta > 0.20) printf "regressed %.1f%%", delta * 100;
    else print "ok";
  }')
  if [ "$verdict" = "ok" ]; then
    echo "check_bench_trend: $key ok (baseline $base_val -> $new_val)"
  else
    echo "check_bench_trend: WARNING $key $verdict (baseline $base_val -> $new_val)"
    REGRESSIONS=$((REGRESSIONS + 1))
  fi
}

check longtail_speedup_vs_full higher
check longtail_speedup_vs_legacy higher
check head_residual_speedup_vs_full higher
check longtail_frontend_share lower

if [ "$REGRESSIONS" -gt 0 ]; then
  echo "check_bench_trend: $REGRESSIONS gated metric(s) regressed >20% vs baseline"
  if [ "$STRICT" -eq 1 ]; then
    exit 1
  fi
fi
exit 0
