#!/bin/sh
# Fails when a docs/*.md (or README.md) references a repository path
# that does not exist. Understands `a/b.{h,cc}` brace groups and `*`
# globs. Run from the repository root; CI runs it on every push.
set -u

fail=0
for doc in docs/*.md README.md src/data/README.md; do
  [ -f "$doc" ] || continue
  # Candidate references: tokens rooted at a known top-level directory.
  # The boundary group rejects larger paths like /usr/src/googletest; the
  # sed strips that leading boundary character back off.
  refs=$(grep -oE '(^|[^/A-Za-z0-9_.-])(src|tools|bench|tests|examples|docs)/[A-Za-z0-9_.{},*/-]*[A-Za-z0-9_*}]' "$doc" \
         | sed -E 's#^[^A-Za-z]+##' | sort -u)
  for ref in $refs; do
    case "$ref" in
      *'{'*)
        # Expand one brace group: src/core/shard.{h,cc} -> .h .cc
        base=${ref%%\{*}
        rest=${ref#*\{}
        exts=${rest%%\}*}
        tail=${rest#*\}}
        for ext in $(printf '%s' "$exts" | tr ',' ' '); do
          path="${base}${ext}${tail}"
          if [ ! -e "$path" ]; then
            echo "$doc: missing $path (from $ref)"
            fail=1
          fi
        done
        ;;
      *'*'*)
        # Glob reference (e.g. bench/bench_table*.cc): any match suffices.
        found=0
        for path in $ref; do
          [ -e "$path" ] && found=1 && break
        done
        if [ "$found" -eq 0 ]; then
          echo "$doc: no match for glob $ref"
          fail=1
        fi
        ;;
      *)
        if [ -e "$ref" ]; then
          continue
        fi
        # Extensionless module reference (src/data/dataset): accept when
        # files with that stem exist.
        case "${ref##*/}" in
          *.*)
            echo "$doc: missing $ref"
            fail=1
            ;;
          *)
            found=0
            for path in "$ref".*; do
              [ -e "$path" ] && found=1 && break
            done
            if [ "$found" -eq 0 ]; then
              echo "$doc: missing $ref"
              fail=1
            fi
            ;;
        esac
        ;;
    esac
  done
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check passed"
