// jocl_stream — streaming ingestion driver over the incremental
// JoclSession (core/session.h).
//
// Replays a generated benchmark as N ingestion batches through a
// long-lived session, reporting per-batch latency and how much of the
// partition each batch actually dirtied, then verifies the final state
// against a one-shot JoclRuntime::Infer (byte-identical with warm start
// off — the session's cold-restart equivalence guarantee) and
// demonstrates removal by retiring the first batch again.
//
// Usage:
//   jocl_stream [scale] [--batches N] [--threads N] [--frontend-threads N]
//               [--legacy-frontend] [--warm] [--no-remove]
//               [--snapshot-out=PATH] [--trace-out=PATH]
//
//   scale         workload scale (default 0.5; 1.0 ≈ 3K triples)
//   --batches N   number of ingestion batches (default 8)
//   --threads N   dirty-shard worker threads (0 = hardware, default)
//   --frontend-threads N
//                 front-end worker threads (candidate generation,
//                 similarity, shard materialization; 0 = hardware)
//   --legacy-frontend
//                 disable the O(Δ) incremental front-end (scratch
//                 BuildProblem + PartitionProblem per batch)
//   --warm        warm-start dirty shards from previous beliefs
//                 (approximate: skips the byte-identity check)
//   --no-remove   skip the removal demonstration
//   --snapshot-out=PATH
//                 persist a CanonStore snapshot after every batch (the
//                 final write is the replay's final state; serve it with
//                 `jocl_serve --snapshot PATH`)
//   --trace-out=PATH
//                 dump the replay's pipeline spans as Chrome trace-event
//                 JSON (open in chrome://tracing or Perfetto);
//                 byte-identical across runs modulo timestamps
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/session.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"
#include "obs/trace.h"
#include "serve/canon_store.h"
#include "serve/snapshot_io.h"
#include "util/stopwatch.h"

using namespace jocl;

namespace {

bool SameDecode(const JoclResult& a, const JoclResult& b) {
  return a.np_cluster == b.np_cluster && a.rp_cluster == b.rp_cluster &&
         a.np_link == b.np_link && a.rp_link == b.rp_link &&
         a.triples == b.triples;
}

void PrintBatch(size_t index, const char* verb, size_t batch_size,
                double seconds, const SessionStats& stats,
                size_t snapshot_bytes) {
  std::printf(
      "  batch %2zu: %s %4zu triples in %6.3fs  "
      "(%zu/%zu shards dirty, %zu merged, %zu split, %zu new phrases, "
      "problem cache %zu hit/%zu miss)",
      index, verb, batch_size, seconds, stats.dirty_shards, stats.shards,
      stats.merged_shards, stats.split_components, stats.cache_new_phrases,
      stats.problem_cache_hits, stats.problem_cache_misses);
  std::printf("  %zu msg updates", stats.message_updates);
  if (snapshot_bytes > 0) {
    std::printf("  snapshot %zu bytes", snapshot_bytes);
  }
  std::printf("\n");
  std::printf(
      "            stages: problem %.1fms  cache %.1fms  partition %.1fms  "
      "shards %.1fms  decode %.1fms%s\n",
      stats.problem_seconds * 1e3, stats.cache_seconds * 1e3,
      stats.partition_seconds * 1e3, stats.shard_seconds * 1e3,
      stats.decode_seconds * 1e3,
      stats.frontend_reused ? "  (front-end reused)" : "");
}

/// Persists the session's current state as a snapshot; returns the file
/// size (0 when disabled or failed).
size_t EmitSnapshot(const JoclSession& session, const Dataset& ds,
                    const std::string& path) {
  if (path.empty()) return 0;
  // The snapshot write is the replay's "publish" stage: the moment the
  // batch's result becomes visible outside the session.
  ScopedSpan publish_span("publish");
  CanonStore store = BuildCanonStore(session.problem(), session.result(),
                                     ds.ckb, session.generation());
  size_t bytes = 0;
  Status status = SaveSnapshot(store, path, &bytes);
  if (!status.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n",
                 status.ToString().c_str());
    return 0;
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  size_t batches = 8;
  SessionOptions session_options;
  bool do_remove = true;
  std::string snapshot_out;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      session_options.num_threads =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--frontend-threads") == 0 &&
               i + 1 < argc) {
      session_options.frontend_threads =
          static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--legacy-frontend") == 0) {
      session_options.incremental_frontend = false;
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      session_options.warm_start = true;
    } else if (std::strcmp(argv[i], "--no-remove") == 0) {
      do_remove = false;
    } else if (std::strncmp(argv[i], "--snapshot-out=", 15) == 0) {
      snapshot_out = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--snapshot-out") == 0 && i + 1 < argc) {
      snapshot_out = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0) scale = 0.5;
    }
  }
  if (batches == 0) batches = 1;
  TraceRecorder recorder;
  std::optional<ScopedTraceSession> trace;
  if (!trace_out.empty()) trace.emplace(&recorder);

  std::printf("generating ReVerb45K-like benchmark (scale %.2f)...\n", scale);
  Dataset ds = GenerateReVerb45K(scale).MoveValueOrDie();
  std::printf("building signals (IDF, word2vec, AMIE, KBP)...\n");
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  const std::vector<size_t>& stream = ds.test_triples;
  std::printf("replaying %zu test triples as %zu ingestion batches"
              "%s...\n\n",
              stream.size(), batches,
              session_options.warm_start ? " (warm start)" : "");

  JoclSession session(&ds, &sig, {}, session_options);
  double total_seconds = 0.0;
  std::vector<size_t> first_batch;
  for (size_t b = 0; b < batches; ++b) {
    size_t begin = b * stream.size() / batches;
    size_t end = (b + 1) * stream.size() / batches;
    std::vector<size_t> batch(stream.begin() + begin, stream.begin() + end);
    if (b == 0) first_batch = batch;
    SessionStats stats;
    Stopwatch watch;
    Status status = session.AddTriples(batch, &stats);
    double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    total_seconds += seconds;
    PrintBatch(b, "added  ", batch.size(), seconds, stats,
               EmitSnapshot(session, ds, snapshot_out));
  }

  // ---- compare against one-shot inference --------------------------------
  RuntimeOptions runtime_options;
  runtime_options.num_threads = session_options.num_threads;
  JoclRuntime runtime({}, runtime_options);
  Stopwatch full_watch;
  JoclResult oneshot =
      runtime.Infer(ds, sig, session.active_triples()).MoveValueOrDie();
  double full_seconds = full_watch.ElapsedSeconds();
  std::printf("\nreplay total %.3fs; one-shot full inference %.3fs\n",
              total_seconds, full_seconds);
  if (session_options.warm_start) {
    std::printf("decode match vs one-shot (warm start, approximate): %s\n",
                SameDecode(session.result(), oneshot) ? "yes" : "no");
  } else {
    bool identical = SameDecode(session.result(), oneshot) &&
                     session.result().diagnostics.marginals ==
                         oneshot.diagnostics.marginals;
    std::printf("byte-identical to one-shot: %s\n",
                identical ? "yes" : "NO (bug!)");
    if (!identical) return 1;
  }

  // ---- evaluation over the streamed result -------------------------------
  std::vector<size_t> gold_np;
  std::vector<int64_t> gold_entities;
  for (size_t t : session.active_triples()) {
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2]));
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2 + 1]));
    gold_entities.push_back(ds.gold_subject_entity[t]);
    gold_entities.push_back(ds.gold_object_entity[t]);
  }
  ClusteringScore score =
      EvaluateClustering(session.result().np_cluster, gold_np);
  std::printf("NP canonicalization: macro %.3f  micro %.3f  pairwise %.3f\n",
              score.macro.f1, score.micro.f1, score.pairwise.f1);
  std::printf("entity linking accuracy: %.3f\n",
              LinkingAccuracy(session.result().np_link, gold_entities));

  // ---- removal demonstration ---------------------------------------------
  if (do_remove && !first_batch.empty()) {
    std::printf("\nretiring the first batch again...\n");
    SessionStats stats;
    Stopwatch watch;
    Status status = session.RemoveTriples(first_batch, &stats);
    double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    PrintBatch(0, "removed", first_batch.size(), seconds, stats,
               EmitSnapshot(session, ds, snapshot_out));
    if (!session_options.warm_start) {
      JoclResult remaining =
          runtime.Infer(ds, sig, session.active_triples()).MoveValueOrDie();
      std::printf("byte-identical after removal: %s\n",
                  SameDecode(session.result(), remaining) &&
                          session.result().diagnostics.marginals ==
                              remaining.diagnostics.marginals
                      ? "yes"
                      : "NO (bug!)");
    }
  }
  if (!trace_out.empty()) {
    trace.reset();  // no span may still be open when we dump
    if (!recorder.WriteChromeJson(trace_out)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
    std::printf("wrote %zu trace spans to %s\n", recorder.Spans().size(),
                trace_out.c_str());
  }
  return 0;
}
