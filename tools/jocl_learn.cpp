// jocl_learn — sharded weight-learning driver (core/sharded_learner.h).
//
// Generates a benchmark, splits its labeled validation triples into a
// train/holdout pair, learns shared factor weights on the sharded
// learning runtime with a per-iteration trace, evaluates learned vs
// uniform weights on the holdout, and optionally demonstrates the live
// hot-swap path: a running JoclSession is retrained in place via
// UpdateWeights and verified byte-identical to a cold session started
// with the learned weights.
//
// Usage:
//   jocl_learn [scale] [--threads N] [--shards N] [--iterations N]
//              [--lr X] [--l2 X] [--holdout F] [--weights-out PATH]
//              [--session-apply]
//
//   scale             workload scale (default 0.5; 1.0 ≈ 3K triples)
//   --threads N       expectation-pass worker threads (0 = hardware)
//   --shards N        scheduling bins (0 = one per component)
//   --iterations N    gradient-ascent iterations (default 15)
//   --lr X            learning rate (default 0.05, paper §4.1)
//   --l2 X            L2 strength toward the uniform prior (default 0.08)
//   --holdout F       fraction of validation triples held out (default 0.2)
//   --weights-out P   save learned weights (header TSV, weights_io.h) and
//                     verify they reload byte-identically
//   --session-apply   run the learn → infer → serve hot-swap demo
//
// Both --threads and --shards are pure execution knobs: the learned
// weights are byte-identical for every setting (core/sharded_learner.h).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/sharded_learner.h"
#include "core/weights_io.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"
#include "util/stopwatch.h"

using namespace jocl;

namespace {

bool SameDecode(const JoclResult& a, const JoclResult& b) {
  return a.np_cluster == b.np_cluster && a.rp_cluster == b.rp_cluster &&
         a.np_link == b.np_link && a.rp_link == b.rp_link &&
         a.triples == b.triples;
}

struct EvalScore {
  double np_f1 = 0.0;
  double link_acc = 0.0;
};

EvalScore Evaluate(const Dataset& ds, const JoclResult& result,
                   const std::vector<size_t>& triples) {
  std::vector<size_t> gold_np;
  std::vector<int64_t> gold_entities;
  for (size_t t : triples) {
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2]));
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2 + 1]));
    gold_entities.push_back(ds.gold_subject_entity[t]);
    gold_entities.push_back(ds.gold_object_entity[t]);
  }
  EvalScore score;
  score.np_f1 = EvaluateClustering(result.np_cluster, gold_np).average_f1;
  score.link_acc = LinkingAccuracy(result.np_link, gold_entities);
  return score;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.5;
  double holdout_fraction = 0.2;
  std::string weights_out;
  bool session_apply = false;
  JoclOptions options;
  LearnRuntimeOptions runtime;
  for (int i = 1; i < argc; ++i) {
    auto value_of = [&](const char* flag) -> const char* {
      const size_t flag_len = std::strlen(flag);
      if (std::strncmp(argv[i], flag, flag_len) == 0 &&
          argv[i][flag_len] == '=') {
        return argv[i] + flag_len + 1;
      }
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (const char* v = value_of("--threads")) {
      runtime.num_threads = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--shards")) {
      runtime.max_shards = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--iterations")) {
      options.learner.iterations = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("--lr")) {
      options.learner.learning_rate = std::atof(v);
    } else if (const char* v = value_of("--l2")) {
      options.learner.l2 = std::atof(v);
    } else if (const char* v = value_of("--holdout")) {
      holdout_fraction = std::atof(v);
    } else if (const char* v = value_of("--weights-out")) {
      weights_out = v;
    } else if (std::strcmp(argv[i], "--session-apply") == 0) {
      session_apply = true;
    } else {
      scale = std::atof(argv[i]);
      if (scale <= 0) scale = 0.5;
    }
  }
  if (holdout_fraction < 0.0 || holdout_fraction >= 1.0) {
    holdout_fraction = 0.2;
  }

  std::printf("generating ReVerb45K-like benchmark (scale %.2f)...\n", scale);
  Dataset ds = GenerateReVerb45K(scale).MoveValueOrDie();
  std::printf("building signals (IDF, word2vec, AMIE, KBP)...\n");
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();

  // ---- train/holdout split (deterministic decimation) ----------------------
  // Every index where the running fraction crosses an integer is held
  // out, so any fraction in [0, 1) is honored evenly across the split.
  const std::vector<size_t>& validation = ds.validation_triples;
  std::vector<size_t> train;
  std::vector<size_t> holdout;
  for (size_t i = 0; i < validation.size(); ++i) {
    const bool hold =
        std::floor(static_cast<double>(i + 1) * holdout_fraction) >
        std::floor(static_cast<double>(i) * holdout_fraction);
    (hold ? holdout : train).push_back(validation[i]);
  }
  std::printf("validation split: %zu train / %zu holdout triples\n\n",
              train.size(), holdout.size());

  // ---- learn ---------------------------------------------------------------
  ShardedLearner learner(options, runtime);
  LearnerRunStats stats;
  Stopwatch watch;
  Result<LearnerResult> learned_result =
      learner.Learn(ds, sig, train, Jocl::DefaultWeights(), &stats);
  if (!learned_result.ok()) return Fail(learned_result.status());
  LearnerResult learned = learned_result.MoveValueOrDie();
  double learn_seconds = watch.ElapsedSeconds();

  std::printf(
      "learning runtime: %zu labels over %zu components in %zu bins\n"
      "  problem build   %.2fs\n"
      "  signal cache    %.2fs\n"
      "  partition       %.2fs\n"
      "  graph setup     %.2fs (%zu variables, %zu factors)\n"
      "  gradient ascent %.2fs (%zu iterations%s)\n",
      stats.labels, stats.components, stats.bins, stats.problem_seconds,
      stats.cache_seconds, stats.partition_seconds, stats.setup_seconds,
      stats.variables, stats.factors, stats.learn_seconds,
      learned.trace.size(), learned.converged ? ", converged" : "");
  for (const LearnerTrace& trace : learned.trace) {
    std::printf("    iter %2zu  objective %+10.4f  grad max-norm %8.5f  "
                "%.3fs\n",
                trace.iteration, trace.objective, trace.gradient_max_norm,
                trace.seconds);
  }
  std::printf("  total           %.2fs\n\n", learn_seconds);
  // Sanity for CI smoke runs: gradient ascent must make progress — the
  // gradient shrinks and the objective estimate rises across the run.
  if (learned.trace.size() >= 2) {
    const LearnerTrace& first = learned.trace.front();
    const LearnerTrace& last = learned.trace.back();
    if (last.gradient_max_norm >= first.gradient_max_norm ||
        last.objective <= first.objective) {
      std::fprintf(stderr, "error: learning did not converge (grad %f -> %f, "
                           "objective %f -> %f)\n",
                   first.gradient_max_norm, last.gradient_max_norm,
                   first.objective, last.objective);
      return 1;
    }
  }

  // ---- weights round-trip --------------------------------------------------
  if (!weights_out.empty()) {
    Status save = SaveWeights(learned.weights, weights_out);
    if (!save.ok()) return Fail(save);
    Result<std::vector<double>> reloaded = LoadWeights(weights_out);
    if (!reloaded.ok()) return Fail(reloaded.status());
    if (reloaded.ValueOrDie() != learned.weights) {
      std::fprintf(stderr, "error: weights did not round-trip through %s\n",
                   weights_out.c_str());
      return 1;
    }
    std::printf("saved %zu weights to %s (header TSV, round-trip OK)\n\n",
                learned.weights.size(), weights_out.c_str());
  }

  // ---- holdout evaluation --------------------------------------------------
  if (!holdout.empty()) {
    Jocl jocl(options);
    JoclResult uniform_result =
        jocl.Infer(ds, sig, holdout, Jocl::DefaultWeights()).MoveValueOrDie();
    JoclResult learned_infer =
        jocl.Infer(ds, sig, holdout, learned.weights).MoveValueOrDie();
    EvalScore uniform_score = Evaluate(ds, uniform_result, holdout);
    EvalScore learned_score = Evaluate(ds, learned_infer, holdout);
    std::printf("holdout (%zu triples):\n", holdout.size());
    std::printf("  uniform weights: NP avg F1 %.3f  linking acc %.3f\n",
                uniform_score.np_f1, uniform_score.link_acc);
    std::printf("  learned weights: NP avg F1 %.3f  linking acc %.3f\n\n",
                learned_score.np_f1, learned_score.link_acc);
  }

  // ---- live hot-swap demo --------------------------------------------------
  if (session_apply) {
    std::printf("session hot-swap demo over %zu test triples...\n",
                ds.test_triples.size());
    JoclSession session(&ds, &sig, options);
    size_t publishes = 0;
    session.SetPublishCallback(
        [&publishes](const JoclSession&) { ++publishes; });
    Status status = session.AddTriples(ds.test_triples);
    if (!status.ok()) return Fail(status);
    JoclResult before = session.result();

    SessionStats swap_stats;
    Stopwatch swap_watch;
    status = session.UpdateWeights(learned.weights, &swap_stats);
    if (!status.ok()) return Fail(status);
    double swap_seconds = swap_watch.ElapsedSeconds();

    size_t decode_changes = 0;
    const JoclResult& after = session.result();
    for (size_t i = 0; i < after.np_cluster.size(); ++i) {
      if (before.np_cluster[i] != after.np_cluster[i]) ++decode_changes;
    }
    for (size_t i = 0; i < after.np_link.size(); ++i) {
      if (before.np_link[i] != after.np_link[i]) ++decode_changes;
    }
    std::printf("  UpdateWeights: re-inferred %zu shards in %.3fs, "
                "%zu publishes fired, %zu decode changes\n",
                swap_stats.dirty_shards, swap_seconds, publishes,
                decode_changes);

    // Hot-swap ≡ cold restart with the same weights (the session's
    // equivalence guarantee; warm start is off by default).
    JoclSession cold(&ds, &sig, options, {}, learned.weights);
    status = cold.AddTriples(ds.test_triples);
    if (!status.ok()) return Fail(status);
    bool identical = SameDecode(session.result(), cold.result()) &&
                     session.result().diagnostics.marginals ==
                         cold.result().diagnostics.marginals;
    std::printf("  hot-swap byte-identical to cold restart: %s\n",
                identical ? "yes" : "NO (bug!)");
    if (!identical) return 1;
  }
  return 0;
}
