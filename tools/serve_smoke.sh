#!/bin/sh
# Serve smoke test: start jocl_serve on an ephemeral port with a small
# live-ingestion workload, wait for the first published store, curl
# /stats and /lookup (with a surface the server printed), and assert
# HTTP 200 + valid JSON on both. Then issue both requests again over a
# single curl invocation and assert curl reused the connection
# (keep-alive). With a second argument of "router" the server runs the
# distributed topology (--shards 2 --router) and the script additionally
# asserts that a broadcast /cluster probe fanned out to every shard
# (no per_shard entry left with "forwarded":0). CI runs both modes
# against the Release build; locally:
#   sh tools/serve_smoke.sh ./build/jocl_serve
#   sh tools/serve_smoke.sh ./build/jocl_serve router
set -u

BIN=${1:-./build/jocl_serve}
MODE=${2:-single}
[ -x "$BIN" ] || { echo "missing binary: $BIN"; exit 1; }
TOPOLOGY=""
if [ "$MODE" = "router" ]; then
  TOPOLOGY="--shards 2 --router"
fi
LOG=$(mktemp)
# shellcheck disable=SC2086  # TOPOLOGY is intentionally word-split
"$BIN" 0.1 --batches 1 --workers 2 --serve-seconds 120 $TOPOLOGY \
  > "$LOG" 2>&1 &
PID=$!
cleanup() {
  kill "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
  rm -f "$LOG"
}
trap cleanup EXIT

# Wait for the first publish (the sample-surface line follows it).
tries=0
while ! grep -q '^sample surface:' "$LOG" 2>/dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 240 ] || ! kill -0 "$PID" 2>/dev/null; then
    echo "server never published a store"; cat "$LOG"; exit 1
  fi
  sleep 0.5
done
PORT=$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$LOG" | head -1)
SURFACE=$(sed -n 's/^sample surface: //p' "$LOG" | head -1)
[ -n "$PORT" ] || { echo "no port in server log"; cat "$LOG"; exit 1; }
[ -n "$SURFACE" ] || { echo "no sample surface"; cat "$LOG"; exit 1; }
echo "server on port $PORT, sample surface: $SURFACE"

check() {
  url=$1; shift
  out=$(curl -sS -w '\n%{http_code}' "$@" "$url") \
    || { echo "curl failed: $url"; exit 1; }
  code=$(printf '%s' "$out" | tail -n 1)
  body=$(printf '%s' "$out" | sed '$d')
  if [ "$code" != "200" ]; then
    echo "HTTP $code from $url"; echo "$body"; exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    printf '%s' "$body" | python3 -m json.tool > /dev/null \
      || { echo "invalid JSON from $url:"; echo "$body"; exit 1; }
  else
    case "$body" in
      '{'*) ;;
      *) echo "invalid JSON from $url:"; echo "$body"; exit 1 ;;
    esac
  fi
  echo "OK  $url"
}

check "http://127.0.0.1:$PORT/stats"
check "http://127.0.0.1:$PORT/lookup" -G --data-urlencode "surface=$SURFACE"

# /metrics: Prometheus text exposition (not JSON). The /lookup above
# already ran, so the data-path counter and its latency histogram must
# both carry samples, and the generation gauge must be published.
METRICS=$(curl -sS "http://127.0.0.1:$PORT/metrics") \
  || { echo "/metrics scrape failed"; exit 1; }
for family in \
    'jocl_requests_total' \
    'jocl_request_latency_seconds_bucket' \
    'jocl_generation'; do
  printf '%s\n' "$METRICS" | grep -q "^$family" \
    || { echo "/metrics missing family $family:"; echo "$METRICS"; exit 1; }
done
printf '%s\n' "$METRICS" | grep -q '# TYPE jocl_request_latency_seconds histogram' \
  || { echo "/metrics missing histogram TYPE line:"; echo "$METRICS"; exit 1; }
if [ "$MODE" = "router" ]; then
  # The router aggregates shard scrapes under per-shard labels and adds
  # its own shard-health gauges.
  for family in 'jocl_shard_generation' 'jocl_shard_port'; do
    printf '%s\n' "$METRICS" | grep -q "^$family" \
      || { echo "router /metrics missing $family:"; echo "$METRICS"; exit 1; }
  done
  printf '%s\n' "$METRICS" | grep -q 'shard="' \
    || { echo "router /metrics has no shard labels:"; echo "$METRICS"; exit 1; }
fi
echo "OK  /metrics exposition ($MODE)"

if [ "$MODE" = "router" ]; then
  # A /cluster miss broadcasts to every shard before reporting 404
  # (a hit stops at the first shard that owns the cluster), so after
  # this probe the router stats must show forwarded > 0 per shard.
  curl -sS -o /dev/null "http://127.0.0.1:$PORT/cluster?id=999999999" \
    || { echo "broadcast /cluster probe failed"; exit 1; }
  STATS=$(curl -sS "http://127.0.0.1:$PORT/stats") \
    || { echo "router /stats failed"; exit 1; }
  case "$STATS" in
    *'"router":true'*) ;;
    *) echo "stats did not come from the router:"; echo "$STATS"; exit 1 ;;
  esac
  FANOUT=$(printf '%s' "$STATS" | grep -o '"forwarded":[0-9]*' | wc -l)
  IDLE=$(printf '%s' "$STATS" | grep -c '"forwarded":0' || true)
  if [ "$FANOUT" -lt 2 ] || [ "$IDLE" -ne 0 ]; then
    echo "router did not fan out to every shard:"; echo "$STATS"; exit 1
  fi
  echo "OK  router fan-out: $FANOUT shard(s) all forwarded > 0"
fi

# Keep-alive: two requests in one curl invocation share one TCP
# connection (curl reuses it unless the server sends Connection: close).
VERBOSE=$(mktemp)
codes=$(curl -sS -v -o /dev/null -o /dev/null -w '%{http_code}\n' \
  "http://127.0.0.1:$PORT/stats" "http://127.0.0.1:$PORT/stats" \
  2> "$VERBOSE") \
  || { echo "keep-alive curl failed"; cat "$VERBOSE"; rm -f "$VERBOSE"; exit 1; }
if [ "$(printf '%s\n' "$codes" | grep -c '^200$')" != "2" ]; then
  echo "keep-alive requests did not both return 200:"; echo "$codes"
  rm -f "$VERBOSE"; exit 1
fi
if ! grep -qi 're-us.* connection' "$VERBOSE"; then
  echo "curl did not reuse the connection (keep-alive broken):"
  cat "$VERBOSE"; rm -f "$VERBOSE"; exit 1
fi
rm -f "$VERBOSE"
echo "OK  keep-alive: two requests over one connection"
echo "serve smoke test passed"
