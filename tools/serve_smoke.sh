#!/bin/sh
# Serve smoke test: start jocl_serve on an ephemeral port with a small
# live-ingestion workload, wait for the first published store, curl
# /stats and /lookup (with a surface the server printed), and assert
# HTTP 200 + valid JSON on both. Then issue both requests again over a
# single curl invocation and assert curl reused the connection
# (keep-alive). CI runs this against the Release build; locally:
# sh tools/serve_smoke.sh ./build/jocl_serve
set -u

BIN=${1:-./build/jocl_serve}
[ -x "$BIN" ] || { echo "missing binary: $BIN"; exit 1; }
LOG=$(mktemp)
"$BIN" 0.1 --batches 1 --workers 2 --serve-seconds 120 > "$LOG" 2>&1 &
PID=$!
cleanup() {
  kill "$PID" 2>/dev/null
  wait "$PID" 2>/dev/null
  rm -f "$LOG"
}
trap cleanup EXIT

# Wait for the first publish (the sample-surface line follows it).
tries=0
while ! grep -q '^sample surface:' "$LOG" 2>/dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 240 ] || ! kill -0 "$PID" 2>/dev/null; then
    echo "server never published a store"; cat "$LOG"; exit 1
  fi
  sleep 0.5
done
PORT=$(sed -n 's#.*http://127\.0\.0\.1:\([0-9]*\).*#\1#p' "$LOG" | head -1)
SURFACE=$(sed -n 's/^sample surface: //p' "$LOG" | head -1)
[ -n "$PORT" ] || { echo "no port in server log"; cat "$LOG"; exit 1; }
[ -n "$SURFACE" ] || { echo "no sample surface"; cat "$LOG"; exit 1; }
echo "server on port $PORT, sample surface: $SURFACE"

check() {
  url=$1; shift
  out=$(curl -sS -w '\n%{http_code}' "$@" "$url") \
    || { echo "curl failed: $url"; exit 1; }
  code=$(printf '%s' "$out" | tail -n 1)
  body=$(printf '%s' "$out" | sed '$d')
  if [ "$code" != "200" ]; then
    echo "HTTP $code from $url"; echo "$body"; exit 1
  fi
  if command -v python3 > /dev/null 2>&1; then
    printf '%s' "$body" | python3 -m json.tool > /dev/null \
      || { echo "invalid JSON from $url:"; echo "$body"; exit 1; }
  else
    case "$body" in
      '{'*) ;;
      *) echo "invalid JSON from $url:"; echo "$body"; exit 1 ;;
    esac
  fi
  echo "OK  $url"
}

check "http://127.0.0.1:$PORT/stats"
check "http://127.0.0.1:$PORT/lookup" -G --data-urlencode "surface=$SURFACE"

# Keep-alive: two requests in one curl invocation share one TCP
# connection (curl reuses it unless the server sends Connection: close).
VERBOSE=$(mktemp)
codes=$(curl -sS -v -o /dev/null -o /dev/null -w '%{http_code}\n' \
  "http://127.0.0.1:$PORT/stats" "http://127.0.0.1:$PORT/stats" \
  2> "$VERBOSE") \
  || { echo "keep-alive curl failed"; cat "$VERBOSE"; rm -f "$VERBOSE"; exit 1; }
if [ "$(printf '%s\n' "$codes" | grep -c '^200$')" != "2" ]; then
  echo "keep-alive requests did not both return 200:"; echo "$codes"
  rm -f "$VERBOSE"; exit 1
fi
if ! grep -qi 're-us.* connection' "$VERBOSE"; then
  echo "curl did not reuse the connection (keep-alive broken):"
  cat "$VERBOSE"; rm -f "$VERBOSE"; exit 1
fi
rm -f "$VERBOSE"
echo "OK  keep-alive: two requests over one connection"
echo "serve smoke test passed"
