// Reproduces Figure 3: OKB relation linking accuracy on ReVerb45K for
// Falcon, EARL, KBPearl, Rematch and JOCL (the paper plots a bar chart;
// we print the series plus an ASCII bar rendering).
#include "baselines/relation_linking.h"
#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

struct PaperRow {
  const char* method;
  double accuracy;  // read off the paper's Figure 3 bars
};

constexpr PaperRow kPaper[] = {
    {"Falcon", 0.23}, {"EARL", 0.17}, {"KBPearl", 0.31},
    {"Rematch", 0.26}, {"JOCL", 0.45},
};

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Figure 3: OKB relation linking accuracy (ReVerb45K-like)", env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const auto& ds = pack->dataset();
  const auto& sig = pack->signals();
  const auto& eval = pack->eval_triples();
  std::vector<int64_t> gold = pack->GoldRelations();
  std::vector<size_t> linkable = pack->LinkableRpMentions();

  Jocl jocl;
  JoclResult jocl_result = jocl.Run(ds, sig, eval).MoveValueOrDie();

  auto acc = [&](const std::vector<int64_t>& links) {
    return LinkingAccuracySubset(links, gold, linkable);
  };
  struct Row {
    const char* method;
    double accuracy;
  };
  std::vector<Row> rows = {
      {"Falcon", acc(FalconRelationLink(ds, sig, eval))},
      {"EARL", acc(EarlRelationLink(ds, sig, eval))},
      {"KBPearl", acc(KbpearlRelationLink(ds, sig, eval))},
      {"Rematch", acc(RematchRelationLink(ds, sig, eval))},
      {"JOCL", acc(jocl_result.rp_link)},
  };

  TablePrinter table({"Method", "Accuracy", "Paper", "Bar"});
  for (size_t r = 0; r < rows.size(); ++r) {
    std::string bar(static_cast<size_t>(rows[r].accuracy * 40), '#');
    table.AddRow({rows[r].method, TablePrinter::Num(rows[r].accuracy),
                  TablePrinter::Num(kPaper[r].accuracy, 2), bar});
  }
  std::printf("%s\nelapsed: %.1fs\n", table.Render().c_str(),
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
