#ifndef JOCL_BENCH_BENCH_COMMON_H_
#define JOCL_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/jocl.h"
#include "core/signals.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"
#include "eval/table_printer.h"
#include "util/stopwatch.h"

namespace jocl {
namespace bench {

/// Scale/seed knobs shared by every bench binary.
/// JOCL_BENCH_SCALE multiplies the generated workload size (default 1.0 =
/// ~3000 triples ReVerb45K-like, ~2300 NYTimes2018-like; 15.0 reproduces
/// the papers' full 45K scale). JOCL_BENCH_SEED switches the world.
struct BenchEnv {
  double scale = 1.0;
  uint64_t seed = 42;

  static BenchEnv FromEnv() {
    BenchEnv env;
    if (const char* s = std::getenv("JOCL_BENCH_SCALE")) {
      env.scale = std::atof(s);
      if (env.scale <= 0.0) env.scale = 1.0;
    }
    if (const char* s = std::getenv("JOCL_BENCH_SEED")) {
      env.seed = static_cast<uint64_t>(std::atoll(s));
    }
    return env;
  }
};

/// A generated data set with its signal bundle (signals reference the
/// dataset, so both live behind stable pointers).
class DataPack {
 public:
  static std::unique_ptr<DataPack> ReVerb(const BenchEnv& env) {
    auto pack = std::unique_ptr<DataPack>(new DataPack());
    pack->dataset_ = std::make_unique<Dataset>(
        GenerateReVerb45K(env.scale, env.seed).MoveValueOrDie());
    pack->Finish();
    return pack;
  }

  static std::unique_ptr<DataPack> NyTimes(const BenchEnv& env) {
    auto pack = std::unique_ptr<DataPack>(new DataPack());
    pack->dataset_ = std::make_unique<Dataset>(
        GenerateNYTimes2018(env.scale, env.seed + 1).MoveValueOrDie());
    pack->Finish();
    return pack;
  }

  const Dataset& dataset() const { return *dataset_; }
  const SignalBundle& signals() const { return *signals_; }

  /// The evaluation subset: test triples (ReVerb) or everything (NYT).
  const std::vector<size_t>& eval_triples() const { return eval_; }

  // Gold label extractors aligned with mention order over eval_triples().
  std::vector<size_t> GoldNp() const {
    std::vector<size_t> gold;
    for (size_t t : eval_) {
      gold.push_back(static_cast<size_t>(dataset_->gold_np_group[t * 2]));
      gold.push_back(
          static_cast<size_t>(dataset_->gold_np_group[t * 2 + 1]));
    }
    return gold;
  }
  std::vector<size_t> GoldRp() const {
    std::vector<size_t> gold;
    for (size_t t : eval_) {
      gold.push_back(static_cast<size_t>(dataset_->gold_rp_group[t]));
    }
    return gold;
  }
  std::vector<int64_t> GoldEntities() const {
    std::vector<int64_t> gold;
    for (size_t t : eval_) {
      gold.push_back(dataset_->gold_subject_entity[t]);
      gold.push_back(dataset_->gold_object_entity[t]);
    }
    return gold;
  }
  std::vector<int64_t> GoldRelations() const {
    std::vector<int64_t> gold;
    for (size_t t : eval_) gold.push_back(dataset_->gold_relation[t]);
    return gold;
  }

  /// NP-mention positions whose gold entity is non-NIL. Mirrors the
  /// paper's manual-labeling protocol: annotators provide the gold mapping
  /// entity, so linking accuracy is measured over linkable mentions.
  std::vector<size_t> LinkableNpMentions() const {
    std::vector<size_t> positions;
    for (size_t i = 0; i < eval_.size(); ++i) {
      if (dataset_->gold_subject_entity[eval_[i]] != kNilId) {
        positions.push_back(i * 2);
      }
      if (dataset_->gold_object_entity[eval_[i]] != kNilId) {
        positions.push_back(i * 2 + 1);
      }
    }
    return positions;
  }

  /// RP-mention positions whose gold relation is non-NIL.
  std::vector<size_t> LinkableRpMentions() const {
    std::vector<size_t> positions;
    for (size_t i = 0; i < eval_.size(); ++i) {
      if (dataset_->gold_relation[eval_[i]] != kNilId) positions.push_back(i);
    }
    return positions;
  }

 private:
  DataPack() = default;
  void Finish() {
    signals_ = std::make_unique<SignalBundle>(
        BuildSignals(*dataset_).MoveValueOrDie());
    if (dataset_->validation_triples.empty()) {
      eval_.resize(dataset_->okb.size());
      for (size_t i = 0; i < eval_.size(); ++i) eval_[i] = i;
    } else {
      eval_ = dataset_->test_triples;
    }
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<SignalBundle> signals_;
  std::vector<size_t> eval_;
};

/// Formats a ClusteringScore as the four Table-1 columns.
inline void AddScoreCells(const ClusteringScore& score,
                          std::vector<std::string>* cells) {
  cells->push_back(TablePrinter::Num(score.macro.f1));
  cells->push_back(TablePrinter::Num(score.micro.f1));
  cells->push_back(TablePrinter::Num(score.pairwise.f1));
  cells->push_back(TablePrinter::Num(score.average_f1));
}

/// Prints a bench banner with workload facts.
inline void Banner(const char* title, const BenchEnv& env) {
  std::printf("=== %s ===\n", title);
  std::printf("workload scale %.2f (JOCL_BENCH_SCALE), seed %llu "
              "(JOCL_BENCH_SEED)\n\n",
              env.scale, static_cast<unsigned long long>(env.seed));
}

}  // namespace bench
}  // namespace jocl

#endif  // JOCL_BENCH_BENCH_COMMON_H_
