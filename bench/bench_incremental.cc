// Incremental-session bench: what a JoclSession ingestion batch costs
// versus rebuilding everything with JoclRuntime::Infer, across batch
// sizes, plus the K-batch replay equivalence check (with removals) and
// the warm-start variant. Emits BENCH_incremental.json (path:
// JOCL_BENCH_OUT, default ./BENCH_incremental.json) for CI tracking;
// tools/check_bench_trend.sh diffs it against the committed baseline.
//
// Acceptance bars:
//   * ISSUE 3 (kept): a longtail 1%-sized batch must be >= 5x faster
//     than a full rebuild, and every K-batch replay must be
//     byte-identical to the one-shot result.
//   * ISSUE 10: the longtail 1% batch must be >= 3x faster end-to-end
//     than the legacy front-end (scratch BuildProblem + PartitionProblem
//     per batch, the PR 3 path) on the same batch; the head-component
//     worst case must reach >= 2.5x vs a full rebuild under the residual
//     schedule (byte-identical to the residual one-shot); and at scale
//     >= 1 the longtail front-end (problem build + partition) must stay
//     <= 25% of the batch wall — the bench hard-fails otherwise.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "core/session.h"

namespace jocl {
namespace bench {
namespace {

struct BatchRun {
  const char* kind = "";
  double fraction = 0.0;
  size_t batch_triples = 0;
  double incremental_seconds = 0.0;
  double legacy_seconds = 0.0;  // same batch, incremental_frontend=false
  double speedup = 0.0;         // vs full rebuild
  double speedup_vs_legacy = 0.0;
  SessionStats stats;
};

struct ReplayRun {
  size_t k = 0;
  bool warm = false;
  bool with_removal = false;
  double total_seconds = 0.0;
  double max_batch_seconds = 0.0;
  bool identical = false;      // byte-identical decode + marginals
  bool decode_match = false;   // decode fields only (warm-start check)
};

bool SameDecode(const JoclResult& a, const JoclResult& b) {
  return a.np_cluster == b.np_cluster && a.rp_cluster == b.rp_cluster &&
         a.np_link == b.np_link && a.rp_link == b.rp_link &&
         a.triples == b.triples;
}

bool SameBytes(const JoclResult& a, const JoclResult& b) {
  return SameDecode(a, b) &&
         a.diagnostics.marginals == b.diagnostics.marginals;
}

/// Problem build + partition — the stages the O(Δ) front-end shrinks.
/// (Signal-cache upkeep is reported separately; it was already
/// incremental before this front-end existed.)
double FrontendSeconds(const SessionStats& stats) {
  return stats.problem_seconds + stats.partition_seconds;
}

/// Replays \p stream as \p k batches through a fresh session. When
/// \p with_removal is set, retires the first batch again after the full
/// replay and re-adds it (for k == 1 that is remove-everything /
/// re-add-everything), so the equivalence check also covers the removal
/// repair path. Timings cover every operation including the removal.
ReplayRun Replay(const Dataset& ds, const SignalBundle& sig,
                 const std::vector<size_t>& stream, size_t k, bool warm,
                 bool with_removal, const JoclResult& oneshot) {
  SessionOptions session_options;
  session_options.warm_start = warm;
  JoclSession session(&ds, &sig, {}, session_options);
  ReplayRun run;
  run.k = k;
  run.warm = warm;
  run.with_removal = with_removal;
  auto step = [&](bool remove, const std::vector<size_t>& batch) {
    Stopwatch watch;
    Status status = remove ? session.RemoveTriples(batch)
                           : session.AddTriples(batch);
    double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::printf("ERROR: %s\n", status.ToString().c_str());
      return false;
    }
    run.total_seconds += seconds;
    if (seconds > run.max_batch_seconds) run.max_batch_seconds = seconds;
    return true;
  };
  std::vector<size_t> first_batch;
  for (size_t b = 0; b < k; ++b) {
    size_t begin = b * stream.size() / k;
    size_t end = (b + 1) * stream.size() / k;
    std::vector<size_t> batch(stream.begin() + begin, stream.begin() + end);
    if (b == 0) first_batch = batch;
    if (!step(false, batch)) return run;
  }
  if (with_removal && !first_batch.empty()) {
    if (!step(true, first_batch)) return run;
    if (!step(false, first_batch)) return run;
  }
  run.decode_match = SameDecode(session.result(), oneshot);
  run.identical = run.decode_match &&
                  session.result().diagnostics.marginals ==
                      oneshot.diagnostics.marginals;
  return run;
}

/// Prefills a session with everything but \p batch, then times the batch
/// — the steady-state cost against a warm store. Repeats the whole
/// prefill + batch measurement \p reps times with a fresh session each
/// (best-of, to shed scheduler noise on millisecond-scale batches) and
/// returns the fastest batch wall seconds with its stats; bumps
/// \p failures when any rep's landed result is not the one-shot result.
double MeasureBatch(const Dataset& ds, const SignalBundle& sig,
                    const std::vector<size_t>& stream,
                    const std::vector<size_t>& batch,
                    const JoclOptions& jocl_options,
                    const SessionOptions& session_options,
                    const JoclResult& oneshot, int reps, SessionStats* stats,
                    int* failures) {
  std::vector<size_t> prefill;
  {
    std::vector<size_t> sorted_batch = batch;
    std::sort(sorted_batch.begin(), sorted_batch.end());
    for (size_t t : stream) {
      if (!std::binary_search(sorted_batch.begin(), sorted_batch.end(), t)) {
        prefill.push_back(t);
      }
    }
  }
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    JoclSession session(&ds, &sig, jocl_options, session_options);
    session.AddTriples(prefill);
    SessionStats rep_stats;
    Stopwatch watch;
    session.AddTriples(batch, &rep_stats);
    double seconds = watch.ElapsedSeconds();
    // The batch must land the session on the one-shot result exactly.
    if (!SameBytes(session.result(), oneshot)) {
      std::printf("ERROR: batch result differs from one-shot!\n");
      ++*failures;
    }
    if (rep == 0 || seconds < best) {
      best = seconds;
      *stats = rep_stats;
    }
  }
  return best;
}

int Run() {
  int failures = 0;
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Incremental session vs full rebuild (ReVerb45K-like)", env);

  Dataset ds = GenerateReVerb45K(env.scale, env.seed).MoveValueOrDie();
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  const std::vector<size_t>& stream = ds.test_triples;
  std::printf("%zu triples, %zu streamed\n\n", ds.okb.size(), stream.size());

  // ---- full-rebuild baselines (best of 2, to shed cold-cache noise) -------
  JoclRuntime runtime;
  double full_seconds = 0.0;
  JoclResult oneshot;
  for (int rep = 0; rep < 2; ++rep) {
    Stopwatch watch;
    oneshot = runtime.Infer(ds, sig, stream).MoveValueOrDie();
    double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < full_seconds) full_seconds = seconds;
  }
  // The residual-schedule baseline for the head-component bar: both sides
  // of that ratio run kResidual, so the comparison stays apples-to-apples.
  JoclOptions residual_options;
  residual_options.inference.schedule = LbpSchedule::kResidual;
  JoclRuntime residual_runtime(residual_options);
  double full_residual_seconds = 0.0;
  JoclResult oneshot_residual;
  for (int rep = 0; rep < 2; ++rep) {
    Stopwatch watch;
    oneshot_residual =
        residual_runtime.Infer(ds, sig, stream).MoveValueOrDie();
    double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < full_residual_seconds) {
      full_residual_seconds = seconds;
    }
  }
  std::printf("full rebuild (one-shot runtime): %.3fs staged, "
              "%.3fs residual\n\n",
              full_seconds, full_residual_seconds);

  // ---- batch composition --------------------------------------------------
  // Incremental cost is proportional to the *dirty region*, not the batch
  // size, and the partition is heavy-tailed: one "head" component holds
  // the strongly blocked surfaces, the long tail is singletons. So two
  // 1%-sized batches bracket the range:
  //   * long-tail batch — triples that form their own small components
  //     (typical ingestion: new facts about new or rare entities). Only
  //     those small shards are dirtied; this is the acceptance metric.
  //   * head batch — triples attached to the largest component, whose
  //     exact re-inference is unavoidable under the byte-identity
  //     guarantee; the worst case.
  JoclProblem full_problem = BuildProblem(ds, sig, stream);
  ShardPlan full_plan = PartitionProblem(full_problem, 0);
  size_t giant = 0;
  for (size_t s = 1; s < full_plan.shards.size(); ++s) {
    if (full_plan.shards[s].triple_map.size() >
        full_plan.shards[giant].triple_map.size()) {
      giant = s;
    }
  }
  std::vector<size_t> longtail_pool;  // dataset ids outside the giant
  std::vector<size_t> head_pool;      // dataset ids of the giant component
  for (size_t s = 0; s < full_plan.shards.size(); ++s) {
    const auto& ids = full_plan.shards[s].problem.triples;
    auto& pool = (s == giant) ? head_pool : longtail_pool;
    pool.insert(pool.end(), ids.begin(), ids.end());
  }
  std::printf("largest component: %zu of %zu streamed triples "
              "(%zu components)\n\n",
              head_pool.size(), stream.size(), full_plan.shards.size());

  size_t one_pct = stream.size() / 100;
  if (one_pct == 0) one_pct = 1;
  auto take_tail = [](const std::vector<size_t>& pool, size_t n) {
    n = std::min(n, pool.size());
    return std::vector<size_t>(pool.end() - n, pool.end());
  };

  std::vector<BatchRun> batch_runs;
  TablePrinter table({"Batch", "Triples", "Incremental (s)", "Legacy (s)",
                      "Dirty shards", "vs full", "vs legacy"});
  SessionOptions incremental_options;  // defaults: incremental front-end on
  SessionOptions legacy_options;
  legacy_options.incremental_frontend = false;  // the PR 3 path
  auto measure = [&](const char* kind, double fraction, int reps,
                     const std::vector<size_t>& batch) {
    BatchRun run;
    run.kind = kind;
    run.fraction = fraction;
    run.batch_triples = batch.size();
    run.incremental_seconds =
        MeasureBatch(ds, sig, stream, batch, {}, incremental_options,
                     oneshot, reps, &run.stats, &failures);
    SessionStats legacy_stats;
    run.legacy_seconds =
        MeasureBatch(ds, sig, stream, batch, {}, legacy_options, oneshot,
                     reps, &legacy_stats, &failures);
    run.speedup = run.incremental_seconds > 0.0
                      ? full_seconds / run.incremental_seconds
                      : 0.0;
    run.speedup_vs_legacy = run.incremental_seconds > 0.0
                                ? run.legacy_seconds / run.incremental_seconds
                                : 0.0;
    table.AddRow({kind, std::to_string(run.batch_triples),
                  TablePrinter::Num(run.incremental_seconds, 3),
                  TablePrinter::Num(run.legacy_seconds, 3),
                  std::to_string(run.stats.dirty_shards) + "/" +
                      std::to_string(run.stats.shards),
                  TablePrinter::Num(run.speedup, 1) + "x",
                  TablePrinter::Num(run.speedup_vs_legacy, 1) + "x"});
    batch_runs.push_back(run);
  };
  // The longtail batch runs in single-digit milliseconds, where scheduler
  // noise rivals the measurement — best-of-3 for it, single-shot for the
  // hundred-millisecond batches.
  measure("longtail 1%", 0.01, /*reps=*/3, take_tail(longtail_pool, one_pct));
  measure("head 1%", 0.01, /*reps=*/1, take_tail(head_pool, one_pct));
  measure("mixed 5%", 0.05, /*reps=*/1, take_tail(stream, 5 * one_pct));
  measure("mixed 10%", 0.10, /*reps=*/1, take_tail(stream, 10 * one_pct));
  std::printf("%s\n", table.Render().c_str());

  const BatchRun& longtail = batch_runs[0];
  const BatchRun& head = batch_runs[1];
  std::printf("longtail 1%% stage split: problem %.4fs, cache %.4fs, "
              "partition %.4fs, shards %.4fs (graph %.4fs + infer %.4fs), "
              "decode %.4fs\n",
              longtail.stats.problem_seconds, longtail.stats.cache_seconds,
              longtail.stats.partition_seconds, longtail.stats.shard_seconds,
              longtail.stats.graph_seconds, longtail.stats.infer_seconds,
              longtail.stats.decode_seconds);
  double frontend_share =
      longtail.incremental_seconds > 0.0
          ? FrontendSeconds(longtail.stats) / longtail.incremental_seconds
          : 0.0;
  std::printf("longtail 1%% front-end (problem + partition): %.4fs = "
              "%.1f%% of batch wall\n",
              FrontendSeconds(longtail.stats), frontend_share * 100.0);

  // ---- head batch under the residual schedule -----------------------------
  // The head batch re-infers the largest component exactly — the price of
  // byte-identical restart semantics. The staged number above is that
  // honest worst case; the residual schedule converges the head component
  // early (against its own residual one-shot baseline, so the identity
  // check still holds bit for bit).
  SessionStats head_residual_stats;
  double head_residual_seconds = MeasureBatch(
      ds, sig, stream, take_tail(head_pool, one_pct), residual_options,
      incremental_options, oneshot_residual, /*reps=*/2,
      &head_residual_stats, &failures);
  double head_residual_speedup = head_residual_seconds > 0.0
                                     ? full_residual_seconds /
                                           head_residual_seconds
                                     : 0.0;
  std::printf("head 1%% residual schedule: %.3fs (%.1fx vs %.3fs residual "
              "full rebuild; staged: %.1fx)\n\n",
              head_residual_seconds, head_residual_speedup,
              full_residual_seconds, head.speedup);

  // ---- acceptance gates ---------------------------------------------------
  bool gate_5x = longtail.speedup >= 5.0;
  bool gate_legacy_3x = longtail.speedup_vs_legacy >= 3.0;
  bool gate_head_residual = head_residual_speedup >= 2.5;
  bool gate_frontend_share = frontend_share <= 0.25;
  bool enforce_frontend_share = env.scale >= 1.0;
  std::printf("acceptance (longtail 1%% >= 5x vs full): %s\n",
              gate_5x ? "PASS" : "FAIL");
  std::printf("acceptance (longtail 1%% >= 3x vs legacy front-end): %s\n",
              gate_legacy_3x ? "PASS" : "FAIL");
  std::printf("acceptance (head 1%% residual >= 2.5x vs full): %s\n",
              gate_head_residual ? "PASS" : "FAIL");
  std::printf("acceptance (longtail front-end <= 25%% of batch wall): %s%s\n",
              gate_frontend_share ? "PASS" : "FAIL",
              enforce_frontend_share ? "" : " (recorded only; scale < 1)");
  std::printf("\n");
  if (!gate_5x) ++failures;
  if (!gate_legacy_3x) ++failures;
  if (!gate_head_residual) ++failures;
  if (enforce_frontend_share && !gate_frontend_share) ++failures;

  // ---- K-batch replay: equivalence + totals -------------------------------
  // Cold replays retire the first batch again and re-add it, so the
  // equivalence also proves the removal repair path (K=1 is the
  // remove-everything / re-add-everything stress).
  std::vector<ReplayRun> replays;
  for (size_t k : {1u, 4u, 16u}) {
    ReplayRun cold = Replay(ds, sig, stream, k, /*warm=*/false,
                            /*with_removal=*/true, oneshot);
    std::printf("replay K=%-2zu cold+removal: total %.3fs (max batch %.3fs), "
                "byte-identical: %s\n",
                k, cold.total_seconds, cold.max_batch_seconds,
                cold.identical ? "yes" : "NO (bug!)");
    if (!cold.identical) ++failures;
    replays.push_back(cold);
  }
  for (size_t k : {4u, 16u}) {
    ReplayRun warm = Replay(ds, sig, stream, k, /*warm=*/true,
                            /*with_removal=*/false, oneshot);
    std::printf("replay K=%-2zu warm: total %.3fs (max batch %.3fs), "
                "decode match: %s\n",
                k, warm.total_seconds, warm.max_batch_seconds,
                warm.decode_match ? "yes" : "no");
    replays.push_back(warm);
  }

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_incremental.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out, "  \"triples\": %zu,\n  \"streamed_triples\": %zu,\n",
               ds.okb.size(), stream.size());
  std::fprintf(out, "  \"full_rebuild_seconds\": %.4f,\n", full_seconds);
  std::fprintf(out, "  \"full_rebuild_residual_seconds\": %.4f,\n",
               full_residual_seconds);
  std::fprintf(out, "  \"batches\": [\n");
  for (size_t i = 0; i < batch_runs.size(); ++i) {
    const BatchRun& run = batch_runs[i];
    std::fprintf(out,
                 "    {\"kind\": \"%s\", "
                 "\"fraction\": %.3f, \"batch_triples\": %zu, "
                 "\"incremental_seconds\": %.4f, "
                 "\"legacy_frontend_seconds\": %.4f, "
                 "\"speedup_vs_full\": %.2f, \"speedup_vs_legacy\": %.2f, "
                 "\"dirty_shards\": %zu, \"clean_shards\": %zu, "
                 "\"total_shards\": %zu, \"merged_shards\": %zu, "
                 "\"problem_seconds\": %.4f, \"cache_seconds\": %.4f, "
                 "\"partition_seconds\": %.4f, \"shard_seconds\": %.4f, "
                 "\"graph_seconds\": %.4f, \"infer_seconds\": %.4f, "
                 "\"decode_seconds\": %.4f, \"frontend_seconds\": %.4f, "
                 "\"cache_new_phrases\": %zu}%s\n",
                 run.kind, run.fraction, run.batch_triples,
                 run.incremental_seconds, run.legacy_seconds, run.speedup,
                 run.speedup_vs_legacy, run.stats.dirty_shards,
                 run.stats.clean_shards, run.stats.shards,
                 run.stats.merged_shards, run.stats.problem_seconds,
                 run.stats.cache_seconds, run.stats.partition_seconds,
                 run.stats.shard_seconds, run.stats.graph_seconds,
                 run.stats.infer_seconds, run.stats.decode_seconds,
                 FrontendSeconds(run.stats), run.stats.cache_new_phrases,
                 i + 1 < batch_runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"head_residual\": {\"seconds\": %.4f, "
               "\"speedup_vs_full\": %.2f},\n",
               head_residual_seconds, head_residual_speedup);
  std::fprintf(out, "  \"replays\": [\n");
  for (size_t i = 0; i < replays.size(); ++i) {
    const ReplayRun& run = replays[i];
    std::fprintf(out,
                 "    {\"k\": %zu, \"warm_start\": %s, "
                 "\"with_removal\": %s, "
                 "\"total_seconds\": %.4f, \"max_batch_seconds\": %.4f, "
                 "\"byte_identical\": %s, \"decode_match\": %s}%s\n",
                 run.k, run.warm ? "true" : "false",
                 run.with_removal ? "true" : "false", run.total_seconds,
                 run.max_batch_seconds, run.identical ? "true" : "false",
                 run.decode_match ? "true" : "false",
                 i + 1 < replays.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // Gated metrics — tools/check_bench_trend.sh diffs these against the
  // committed baseline and warns on >20% regressions.
  std::fprintf(out, "  \"longtail_speedup_vs_full\": %.2f,\n",
               longtail.speedup);
  std::fprintf(out, "  \"longtail_speedup_vs_legacy\": %.2f,\n",
               longtail.speedup_vs_legacy);
  std::fprintf(out, "  \"head_residual_speedup_vs_full\": %.2f,\n",
               head_residual_speedup);
  std::fprintf(out, "  \"longtail_frontend_share\": %.4f,\n", frontend_share);
  std::fprintf(out, "  \"acceptance_1pct_speedup_ge_5x\": %s,\n",
               gate_5x ? "true" : "false");
  std::fprintf(out, "  \"acceptance_longtail_vs_legacy_ge_3x\": %s,\n",
               gate_legacy_3x ? "true" : "false");
  std::fprintf(out, "  \"acceptance_head_residual_ge_2_5x\": %s,\n",
               gate_head_residual ? "true" : "false");
  std::fprintf(out, "  \"acceptance_frontend_share_le_25pct\": %s\n",
               gate_frontend_share ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  if (failures > 0) {
    std::printf("%d correctness/acceptance check(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { return jocl::bench::Run(); }
