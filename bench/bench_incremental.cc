// Incremental-session bench: what a JoclSession ingestion batch costs
// versus rebuilding everything with JoclRuntime::Infer, across batch
// sizes, plus the K-batch replay equivalence check and the warm-start
// variant. Emits BENCH_incremental.json (path: JOCL_BENCH_OUT, default
// ./BENCH_incremental.json) for CI tracking.
//
// Acceptance bar (ISSUE 3): a 1%-sized batch must be >= 5x faster than a
// full rebuild, and the K-batch replay must be byte-identical to the
// one-shot result.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "core/session.h"

namespace jocl {
namespace bench {
namespace {

struct BatchRun {
  const char* kind = "";
  double fraction = 0.0;
  size_t batch_triples = 0;
  double incremental_seconds = 0.0;
  double speedup = 0.0;
  SessionStats stats;
};

struct ReplayRun {
  size_t k = 0;
  bool warm = false;
  double total_seconds = 0.0;
  double max_batch_seconds = 0.0;
  bool identical = false;      // byte-identical decode + marginals
  bool decode_match = false;   // decode fields only (warm-start check)
};

bool SameDecode(const JoclResult& a, const JoclResult& b) {
  return a.np_cluster == b.np_cluster && a.rp_cluster == b.rp_cluster &&
         a.np_link == b.np_link && a.rp_link == b.rp_link &&
         a.triples == b.triples;
}

ReplayRun Replay(const Dataset& ds, const SignalBundle& sig,
                 const std::vector<size_t>& stream, size_t k, bool warm,
                 const JoclResult& oneshot) {
  SessionOptions session_options;
  session_options.warm_start = warm;
  JoclSession session(&ds, &sig, {}, session_options);
  ReplayRun run;
  run.k = k;
  run.warm = warm;
  for (size_t b = 0; b < k; ++b) {
    size_t begin = b * stream.size() / k;
    size_t end = (b + 1) * stream.size() / k;
    std::vector<size_t> batch(stream.begin() + begin, stream.begin() + end);
    Stopwatch watch;
    Status status = session.AddTriples(batch);
    double seconds = watch.ElapsedSeconds();
    if (!status.ok()) {
      std::printf("ERROR: %s\n", status.ToString().c_str());
      return run;
    }
    run.total_seconds += seconds;
    if (seconds > run.max_batch_seconds) run.max_batch_seconds = seconds;
  }
  run.decode_match = SameDecode(session.result(), oneshot);
  run.identical = run.decode_match &&
                  session.result().diagnostics.marginals ==
                      oneshot.diagnostics.marginals;
  return run;
}

int Run() {
  int failures = 0;
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Incremental session vs full rebuild (ReVerb45K-like)", env);

  Dataset ds = GenerateReVerb45K(env.scale, env.seed).MoveValueOrDie();
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  const std::vector<size_t>& stream = ds.test_triples;
  std::printf("%zu triples, %zu streamed\n\n", ds.okb.size(), stream.size());

  // ---- full-rebuild baseline (best of 2, to shed cold-cache noise) --------
  JoclRuntime runtime;
  double full_seconds = 0.0;
  JoclResult oneshot;
  for (int rep = 0; rep < 2; ++rep) {
    Stopwatch watch;
    oneshot = runtime.Infer(ds, sig, stream).MoveValueOrDie();
    double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < full_seconds) full_seconds = seconds;
  }
  std::printf("full rebuild (one-shot runtime): %.3fs\n\n", full_seconds);

  // ---- batch composition --------------------------------------------------
  // Incremental cost is proportional to the *dirty region*, not the batch
  // size, and the partition is heavy-tailed: one "head" component holds
  // the strongly blocked surfaces, the long tail is singletons. So two
  // 1%-sized batches bracket the range:
  //   * long-tail batch — triples that form their own small components
  //     (typical ingestion: new facts about new or rare entities). Only
  //     those small shards are dirtied; this is the acceptance metric.
  //   * head batch — triples attached to the largest component, whose
  //     exact re-inference is unavoidable under the byte-identity
  //     guarantee; the worst case.
  JoclProblem full_problem = BuildProblem(ds, sig, stream);
  ShardPlan full_plan = PartitionProblem(full_problem, 0);
  size_t giant = 0;
  for (size_t s = 1; s < full_plan.shards.size(); ++s) {
    if (full_plan.shards[s].triple_map.size() >
        full_plan.shards[giant].triple_map.size()) {
      giant = s;
    }
  }
  std::vector<size_t> longtail_pool;  // dataset ids outside the giant
  std::vector<size_t> head_pool;      // dataset ids of the giant component
  for (size_t s = 0; s < full_plan.shards.size(); ++s) {
    const auto& ids = full_plan.shards[s].problem.triples;
    auto& pool = (s == giant) ? head_pool : longtail_pool;
    pool.insert(pool.end(), ids.begin(), ids.end());
  }
  std::printf("largest component: %zu of %zu streamed triples "
              "(%zu components)\n\n",
              head_pool.size(), stream.size(), full_plan.shards.size());

  size_t one_pct = stream.size() / 100;
  if (one_pct == 0) one_pct = 1;
  auto take_tail = [](const std::vector<size_t>& pool, size_t n) {
    n = std::min(n, pool.size());
    return std::vector<size_t>(pool.end() - n, pool.end());
  };

  std::vector<BatchRun> batch_runs;
  TablePrinter table({"Batch", "Triples", "Incremental (s)", "Dirty shards",
                      "Speedup vs full"});
  auto measure = [&](const char* kind, double fraction,
                     const std::vector<size_t>& batch) {
    // Prefill a session with everything but the batch, then time the
    // batch — the steady-state cost against a warm store.
    std::vector<size_t> head_set;
    {
      std::vector<size_t> sorted_batch = batch;
      std::sort(sorted_batch.begin(), sorted_batch.end());
      for (size_t t : stream) {
        if (!std::binary_search(sorted_batch.begin(), sorted_batch.end(), t)) {
          head_set.push_back(t);
        }
      }
    }
    JoclSession session(&ds, &sig, {}, {});
    session.AddTriples(head_set);
    BatchRun run;
    run.kind = kind;
    run.fraction = fraction;
    run.batch_triples = batch.size();
    Stopwatch watch;
    session.AddTriples(batch, &run.stats);
    run.incremental_seconds = watch.ElapsedSeconds();
    run.speedup = run.incremental_seconds > 0.0
                      ? full_seconds / run.incremental_seconds
                      : 0.0;
    // The batch must land the session on the one-shot result exactly.
    if (!SameDecode(session.result(), oneshot)) {
      std::printf("ERROR: batch result differs from one-shot!\n");
      ++failures;
    }
    table.AddRow({kind, std::to_string(run.batch_triples),
                  TablePrinter::Num(run.incremental_seconds, 3),
                  std::to_string(run.stats.dirty_shards) + "/" +
                      std::to_string(run.stats.shards),
                  TablePrinter::Num(run.speedup, 1) + "x"});
    batch_runs.push_back(run);
  };
  measure("longtail 1%", 0.01, take_tail(longtail_pool, one_pct));
  measure("head 1%", 0.01, take_tail(head_pool, one_pct));
  measure("mixed 5%", 0.05, take_tail(stream, 5 * one_pct));
  measure("mixed 10%", 0.10, take_tail(stream, 10 * one_pct));
  std::printf("%s\n", table.Render().c_str());

  const BatchRun& longtail = batch_runs.front();
  std::printf("longtail 1%% stage split: problem %.3fs, cache %.3fs, "
              "partition %.3fs, shards %.3fs (graph %.3fs + infer %.3fs), "
              "decode %.3fs\n",
              longtail.stats.problem_seconds, longtail.stats.cache_seconds,
              longtail.stats.partition_seconds, longtail.stats.shard_seconds,
              longtail.stats.graph_seconds, longtail.stats.infer_seconds,
              longtail.stats.decode_seconds);
  std::printf("the head batch re-infers the largest component exactly — the "
              "price of\nbyte-identical restart semantics; see "
              "docs/benchmarks.md.\n");
  std::printf("acceptance (longtail 1%% batch >= 5x): %s\n\n",
              longtail.speedup >= 5.0 ? "PASS" : "FAIL");
  if (longtail.speedup < 5.0) ++failures;

  // ---- K-batch replay: equivalence + totals -------------------------------
  std::vector<ReplayRun> replays;
  for (size_t k : {4u, 16u}) {
    ReplayRun cold = Replay(ds, sig, stream, k, /*warm=*/false, oneshot);
    std::printf("replay K=%-2zu cold: total %.3fs (max batch %.3fs), "
                "byte-identical: %s\n",
                k, cold.total_seconds, cold.max_batch_seconds,
                cold.identical ? "yes" : "NO (bug!)");
    if (!cold.identical) ++failures;
    replays.push_back(cold);
    ReplayRun warm = Replay(ds, sig, stream, k, /*warm=*/true, oneshot);
    std::printf("replay K=%-2zu warm: total %.3fs (max batch %.3fs), "
                "decode match: %s\n",
                k, warm.total_seconds, warm.max_batch_seconds,
                warm.decode_match ? "yes" : "no");
    replays.push_back(warm);
  }

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_incremental.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out, "  \"triples\": %zu,\n  \"streamed_triples\": %zu,\n",
               ds.okb.size(), stream.size());
  std::fprintf(out, "  \"full_rebuild_seconds\": %.4f,\n", full_seconds);
  std::fprintf(out, "  \"batches\": [\n");
  for (size_t i = 0; i < batch_runs.size(); ++i) {
    const BatchRun& run = batch_runs[i];
    std::fprintf(out,
                 "    {\"kind\": \"%s\", "
                 "\"fraction\": %.3f, \"batch_triples\": %zu, "
                 "\"incremental_seconds\": %.4f, \"speedup_vs_full\": %.2f, "
                 "\"dirty_shards\": %zu, \"clean_shards\": %zu, "
                 "\"total_shards\": %zu, \"merged_shards\": %zu, "
                 "\"problem_seconds\": %.4f, \"cache_seconds\": %.4f, "
                 "\"partition_seconds\": %.4f, \"shard_seconds\": %.4f, "
                 "\"graph_seconds\": %.4f, \"infer_seconds\": %.4f, "
                 "\"decode_seconds\": %.4f, \"cache_new_phrases\": %zu}%s\n",
                 run.kind, run.fraction, run.batch_triples,
                 run.incremental_seconds,
                 run.speedup, run.stats.dirty_shards, run.stats.clean_shards,
                 run.stats.shards, run.stats.merged_shards,
                 run.stats.problem_seconds, run.stats.cache_seconds,
                 run.stats.partition_seconds, run.stats.shard_seconds,
                 run.stats.graph_seconds, run.stats.infer_seconds,
                 run.stats.decode_seconds, run.stats.cache_new_phrases,
                 i + 1 < batch_runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"replays\": [\n");
  for (size_t i = 0; i < replays.size(); ++i) {
    const ReplayRun& run = replays[i];
    std::fprintf(out,
                 "    {\"k\": %zu, \"warm_start\": %s, "
                 "\"total_seconds\": %.4f, \"max_batch_seconds\": %.4f, "
                 "\"byte_identical\": %s, \"decode_match\": %s}%s\n",
                 run.k, run.warm ? "true" : "false", run.total_seconds,
                 run.max_batch_seconds, run.identical ? "true" : "false",
                 run.decode_match ? "true" : "false",
                 i + 1 < replays.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"acceptance_1pct_speedup_ge_5x\": %s\n",
               longtail.speedup >= 5.0 ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  if (failures > 0) {
    std::printf("%d correctness/acceptance check(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { return jocl::bench::Run(); }
