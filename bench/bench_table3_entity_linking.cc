// Reproduces Table 3: OKB entity linking accuracy over both data sets for
// Falcon, EARL, Spotlight, TagMe, KBPearl and JOCL.
#include "baselines/entity_linking.h"
#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

struct PaperRow {
  const char* method;
  double reverb;
  double nyt;
};

constexpr PaperRow kPaper[] = {
    {"Falcon", 0.541, 0.33}, {"EARL", 0.473, 0.25},
    {"Spotlight", 0.716, 0.26}, {"TagMe", 0.316, 0.30},
    {"KBPearl", 0.522, 0.46}, {"JOCL", 0.761, 0.48},
};

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Table 3: OKB entity linking accuracy", env);
  Stopwatch watch;

  std::vector<std::pair<const char*, std::unique_ptr<DataPack>>> packs;
  packs.emplace_back("ReVerb45K-like", DataPack::ReVerb(env));
  packs.emplace_back("NYTimes2018-like", DataPack::NyTimes(env));

  TablePrinter table({"Method", "ReVerb45K-like", "Paper", "NYTimes2018-like",
                      "Paper"});
  std::vector<std::vector<double>> accuracy(6);
  std::vector<double> transfer_weights;
  for (auto& [name, pack] : packs) {
    const auto& ds = pack->dataset();
    const auto& sig = pack->signals();
    const auto& eval = pack->eval_triples();
    std::vector<int64_t> gold = pack->GoldEntities();
    std::vector<size_t> linkable = pack->LinkableNpMentions();

    Jocl jocl;
    std::vector<double> weights;
    if (!ds.validation_triples.empty()) {
      weights = jocl.LearnWeights(ds, sig).MoveValueOrDie();
      transfer_weights = weights;
    } else {
      weights = transfer_weights.empty() ? Jocl::DefaultWeights()
                                         : transfer_weights;
    }
    JoclResult jocl_result =
        jocl.Infer(ds, sig, eval, weights).MoveValueOrDie();

    auto acc = [&](const std::vector<int64_t>& links) {
      return LinkingAccuracySubset(links, gold, linkable);
    };
    accuracy[0].push_back(acc(FalconLink(ds, sig, eval)));
    accuracy[1].push_back(acc(EarlLink(ds, sig, eval)));
    accuracy[2].push_back(acc(SpotlightLink(ds, sig, eval)));
    accuracy[3].push_back(acc(TagMeLink(ds, sig, eval)));
    accuracy[4].push_back(acc(KbpearlLink(ds, sig, eval)));
    accuracy[5].push_back(acc(jocl_result.np_link));
  }

  for (size_t r = 0; r < 6; ++r) {
    table.AddRow({kPaper[r].method, TablePrinter::Num(accuracy[r][0]),
                  TablePrinter::Num(kPaper[r].reverb),
                  TablePrinter::Num(accuracy[r][1]),
                  TablePrinter::Num(kPaper[r].nyt)});
  }
  std::printf("%s\nelapsed: %.1fs\n", table.Render().c_str(),
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
