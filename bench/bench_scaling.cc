// End-to-end pipeline bench for the sharded runtime: where the time goes
// (problem, signal cache, shard execution, decode), what the signal cache
// saves over the uncached per-query signal path, and how wall clock
// scales with shard-level worker threads. Emits BENCH_pipeline.json
// (path: JOCL_BENCH_OUT, default ./BENCH_pipeline.json) for CI tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/graph_builder.h"
#include "core/problem.h"
#include "core/runtime.h"
#include "core/signal_cache.h"

namespace jocl {
namespace bench {
namespace {

struct ThreadRun {
  size_t threads = 0;
  double seconds = 0.0;
  RuntimeStats stats;
};

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("End-to-end sharded runtime (ReVerb45K-like)", env);

  Dataset ds = GenerateReVerb45K(env.scale, env.seed).MoveValueOrDie();
  Stopwatch signal_watch;
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  double signal_s = signal_watch.ElapsedSeconds();
  std::printf("%zu triples, %zu test; signals built in %.2fs\n\n",
              ds.okb.size(), ds.test_triples.size(), signal_s);

  // ---- signal cache vs uncached graph build -------------------------------
  // The same graph, built twice: signal queries answered from scratch
  // (tokenize + phrase vectors per pair/candidate/alias) vs from the
  // per-surface memoized cache.
  JoclProblem problem = BuildProblem(ds, sig, ds.test_triples);
  Stopwatch uncached_watch;
  JoclGraph uncached = BuildJoclGraph(problem, sig, ds.ckb);
  double graph_uncached_s = uncached_watch.ElapsedSeconds();

  Stopwatch cache_watch;
  SignalCache cache = SignalCache::ForProblem(problem, sig, ds.ckb);
  double cache_build_s = cache_watch.ElapsedSeconds();
  Stopwatch cached_watch;
  JoclGraph cached = BuildJoclGraph(problem, cache, ds.ckb);
  double graph_cached_s = cached_watch.ElapsedSeconds();

  double cache_speedup =
      (cache_build_s + graph_cached_s) > 0.0
          ? graph_uncached_s / (cache_build_s + graph_cached_s)
          : 0.0;
  TablePrinter cache_table({"Graph build", "Seconds", "Factors"});
  cache_table.AddRow({"uncached signals", TablePrinter::Num(graph_uncached_s, 3),
                      std::to_string(uncached.graph.factor_count())});
  cache_table.AddRow({"cache build", TablePrinter::Num(cache_build_s, 3), ""});
  cache_table.AddRow({"cached signals", TablePrinter::Num(graph_cached_s, 3),
                      std::to_string(cached.graph.factor_count())});
  std::printf("%s(cache + cached build is %.2fx the uncached build)\n\n",
              cache_table.Render().c_str(), cache_speedup);

  // ---- isolated pairwise signal sweep -------------------------------------
  // Every blocked pair's signals through both providers: the uncached path
  // re-tokenizes and re-averages phrase vectors per query; the cache reads
  // precomputed unit vectors and interned ids.
  double sink = 0.0;
  auto sweep = [&](auto&& provider) {
    for (const auto& pair : problem.subject_pairs) {
      const auto& a = problem.subject_surfaces[pair.a];
      const auto& b = problem.subject_surfaces[pair.b];
      sink += provider.Emb(a, b) + provider.Ppdb(a, b);
    }
    for (const auto& pair : problem.object_pairs) {
      const auto& a = problem.object_surfaces[pair.a];
      const auto& b = problem.object_surfaces[pair.b];
      sink += provider.Emb(a, b) + provider.Ppdb(a, b);
    }
    for (const auto& pair : problem.predicate_pairs) {
      const auto& a = problem.predicate_surfaces[pair.a];
      const auto& b = problem.predicate_surfaces[pair.b];
      sink += provider.Emb(a, b) + provider.Ppdb(a, b) +
              provider.Amie(a, b) + provider.Kbp(a, b);
    }
  };
  const size_t n_pairs = problem.subject_pairs.size() +
                         problem.predicate_pairs.size() +
                         problem.object_pairs.size();
  Stopwatch bundle_sweep_watch;
  sweep(sig);
  double sweep_uncached_s = bundle_sweep_watch.ElapsedSeconds();
  Stopwatch cache_sweep_watch;
  sweep(cache);
  double sweep_cached_s = cache_sweep_watch.ElapsedSeconds();
  double sweep_speedup =
      sweep_cached_s > 0.0 ? sweep_uncached_s / sweep_cached_s : 0.0;
  std::printf("pair-signal sweep over %zu pairs: uncached %.4fs, cached "
              "%.4fs (%.1fx)%s\n\n",
              n_pairs, sweep_uncached_s, sweep_cached_s, sweep_speedup,
              sink > 1e300 ? "!" : "");

  // ---- thread scaling over the full pipeline ------------------------------
  std::vector<ThreadRun> runs;
  TablePrinter scale_table({"Threads", "Shards", "Total (s)", "Shard stage (s)",
                            "Speedup"});
  double base_seconds = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    RuntimeOptions runtime_options;
    runtime_options.num_threads = threads;
    runtime_options.max_shards = 0;  // one shard per sub-problem
    JoclRuntime runtime({}, runtime_options);
    ThreadRun run;
    run.threads = threads;
    Stopwatch watch;
    JoclResult result =
        runtime.Infer(ds, sig, ds.test_triples, {}, &run.stats)
            .MoveValueOrDie();
    run.seconds = watch.ElapsedSeconds();
    (void)result;
    if (threads == 1) base_seconds = run.seconds;
    scale_table.AddRow({std::to_string(threads),
                        std::to_string(run.stats.shards),
                        TablePrinter::Num(run.seconds, 3),
                        TablePrinter::Num(run.stats.shard_seconds, 3),
                        TablePrinter::Num(
                            run.seconds > 0.0 ? base_seconds / run.seconds
                                              : 0.0,
                            2)});
    runs.push_back(run);
  }
  std::printf("%s(results are byte-identical across all rows; the shard\n"
              " stage is the parallel build+compile+infer portion)\n",
              scale_table.Render().c_str());

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_pipeline.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out, "  \"triples\": %zu,\n  \"test_triples\": %zu,\n",
               ds.okb.size(), ds.test_triples.size());
  std::fprintf(out, "  \"signals_seconds\": %.4f,\n", signal_s);
  std::fprintf(out,
               "  \"signal_cache\": {\n"
               "    \"uncached_graph_seconds\": %.4f,\n"
               "    \"cache_build_seconds\": %.4f,\n"
               "    \"cached_graph_seconds\": %.4f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"pair_signal_sweep\": {\"pairs\": %zu, "
               "\"uncached_seconds\": %.4f, \"cached_seconds\": %.4f, "
               "\"speedup\": %.3f}\n  },\n",
               graph_uncached_s, cache_build_s, graph_cached_s,
               cache_speedup, n_pairs, sweep_uncached_s, sweep_cached_s,
               sweep_speedup);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ThreadRun& run = runs[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"shards\": %zu, "
                 "\"components\": %zu, \"seconds\": %.4f, "
                 "\"shard_stage_seconds\": %.4f, \"decode_seconds\": %.4f, "
                 "\"speedup_vs_1\": %.3f}%s\n",
                 run.threads, run.stats.shards, run.stats.components,
                 run.seconds, run.stats.shard_seconds,
                 run.stats.decode_seconds,
                 run.seconds > 0.0 ? base_seconds / run.seconds : 0.0,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
