// Extra engineering bench: end-to-end wall clock vs workload size. Shows
// where the time goes (signal construction, graph building, LBP) and that
// the pipeline scales roughly linearly in the number of triples at a
// fixed ambiguity level.
#include "bench/bench_common.h"
#include "core/graph_builder.h"
#include "core/problem.h"

namespace jocl {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("End-to-end scaling (ReVerb45K-like)", env);

  TablePrinter table({"Triples", "Signals (s)", "Graph build (s)",
                      "LBP+decode (s)", "Vars", "Factors"});
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    Stopwatch total;
    Dataset ds = GenerateReVerb45K(scale * env.scale, env.seed)
                     .MoveValueOrDie();
    Stopwatch signal_watch;
    SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
    double signal_s = signal_watch.ElapsedSeconds();

    Stopwatch build_watch;
    JoclProblem problem = BuildProblem(ds, sig, ds.test_triples);
    JoclGraph jgraph = BuildJoclGraph(problem, sig, ds.ckb);
    double build_s = build_watch.ElapsedSeconds();

    Stopwatch infer_watch;
    Jocl jocl;
    JoclResult result =
        jocl.Infer(ds, sig, ds.test_triples).MoveValueOrDie();
    double infer_s = infer_watch.ElapsedSeconds();
    (void)result;

    table.AddRow({std::to_string(ds.okb.size()),
                  TablePrinter::Num(signal_s, 2),
                  TablePrinter::Num(build_s, 2),
                  TablePrinter::Num(infer_s, 2),
                  std::to_string(jgraph.graph.variable_count()),
                  std::to_string(jgraph.graph.factor_count())});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("(Infer includes problem + graph construction a second time;\n"
              " the isolated columns show each phase's cost.)\n");
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
