// Learning-runtime bench: the sequential monolithic learner (one global
// graph, sequential LBP passes) versus the sharded learner
// (core/sharded_learner.h) across threads/shards settings, plus the
// byte-identity check between every configuration, the per-iteration
// objective/gradient trace, and a learned-vs-uniform quality readout.
// Emits BENCH_learning.json (path: JOCL_BENCH_OUT, default
// ./BENCH_learning.json) for CI tracking.
//
// Acceptance bar (ISSUE 5): byte-identical weights for every
// threads/shards setting, and >= 2x end-to-end learning speedup at 4
// threads over the sequential learner (enforced when the host has >= 4
// hardware threads; reported otherwise).
#include <cmath>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/graph_builder.h"
#include "core/problem.h"
#include "core/sharded_learner.h"
#include "core/signal_cache.h"
#include "util/rng.h"

namespace jocl {
namespace bench {
namespace {

struct ShardedRun {
  size_t threads = 0;
  size_t shards = 0;
  double seconds = 0.0;
  double speedup = 0.0;
  bool identical = false;  // weights byte-identical to the reference run
};

int Run() {
  int failures = 0;
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Sharded learning runtime (ReVerb45K-like)", env);
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const Dataset& ds = pack->dataset();
  const SignalBundle& sig = pack->signals();

  // The labeled subset, subsampled exactly like Jocl::LearnWeights.
  JoclOptions options;
  std::vector<size_t> labeled = ds.validation_triples;
  if (labeled.size() > options.max_learning_triples) {
    Rng rng(options.seed);
    rng.Shuffle(&labeled);
    labeled.resize(options.max_learning_triples);
  }
  std::printf("%zu labeled triples, %zu gradient iterations\n\n",
              labeled.size(), options.learner.iterations);

  // ---- sequential baseline: monolithic graph, sequential LBP --------------
  // This is the pre-refactor learning path: one global compiled graph and
  // every expectation pass on a single thread.
  double sequential_seconds = 0.0;
  std::vector<double> sequential_weights;
  {
    Stopwatch watch;
    JoclProblem problem = BuildProblem(ds, sig, labeled, options.problem);
    SignalCache cache = SignalCache::ForProblem(problem, sig, ds.ckb);
    JoclGraph jgraph = BuildJoclGraph(problem, cache, ds.ckb,
                                      options.builder);
    std::vector<std::pair<VariableId, size_t>> labels =
        BuildGoldLabels(ds, problem, jgraph, options.builder);
    LearnerOptions learner_options = options.learner;
    learner_options.backend = InferenceBackend::kLbp;  // forces one thread
    learner_options.lbp.factor_schedule = jgraph.schedule;
    FactorGraphLearner learner(learner_options);
    LearnerResult result =
        learner.Learn(&jgraph.graph, labels, Jocl::DefaultWeights());
    sequential_seconds = watch.ElapsedSeconds();
    sequential_weights = std::move(result.weights);
  }
  std::printf("sequential learner (monolithic graph, 1 thread): %.3fs\n\n",
              sequential_seconds);

  // ---- sharded learner sweep ----------------------------------------------
  const std::vector<std::pair<size_t, size_t>> configs = {
      {1, 0}, {2, 0}, {4, 0}, {8, 0}, {4, 1}, {4, 8}};
  std::vector<ShardedRun> runs;
  std::vector<double> reference_weights;
  LearnerResult reference_result;
  LearnerRunStats reference_stats;
  TablePrinter table({"Threads", "Bins", "Seconds", "Speedup", "Identical"});
  for (const auto& [threads, shards] : configs) {
    LearnRuntimeOptions runtime;
    runtime.num_threads = threads;
    runtime.max_shards = shards;
    ShardedLearner learner(options, runtime);
    LearnerRunStats stats;
    Stopwatch watch;
    Result<LearnerResult> learned =
        learner.Learn(ds, sig, labeled, Jocl::DefaultWeights(), &stats);
    double seconds = watch.ElapsedSeconds();
    if (!learned.ok()) {
      std::printf("ERROR: %s\n", learned.status().ToString().c_str());
      return 1;
    }
    ShardedRun run;
    run.threads = threads;
    run.shards = shards;
    run.seconds = seconds;
    run.speedup = seconds > 0.0 ? sequential_seconds / seconds : 0.0;
    if (reference_weights.empty()) {
      reference_weights = learned.ValueOrDie().weights;
      reference_result = learned.MoveValueOrDie();
      reference_stats = stats;
      run.identical = true;
    } else {
      run.identical = learned.ValueOrDie().weights == reference_weights;
    }
    if (!run.identical) ++failures;
    table.AddRow({std::to_string(threads),
                  shards == 0 ? "per-comp" : std::to_string(shards),
                  TablePrinter::Num(run.seconds),
                  TablePrinter::Num(run.speedup),
                  run.identical ? "yes" : "NO (bug!)"});
    runs.push_back(run);
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("partition: %zu components, %zu labels, %zu variables, "
              "%zu factors\n",
              reference_stats.components, reference_stats.labels,
              reference_stats.variables, reference_stats.factors);

  // Cross-check against the monolithic learner: identical math, so the
  // two may differ only by float summation order compounded through the
  // LBP passes — a real divergence (wrong labels, dropped component)
  // shows up orders of magnitude above this bar.
  double monolithic_divergence = 0.0;
  for (size_t k = 0; k < reference_weights.size(); ++k) {
    monolithic_divergence =
        std::max(monolithic_divergence,
                 std::abs(reference_weights[k] - sequential_weights[k]));
  }
  std::printf("max |sharded - monolithic| weight divergence: %.2e%s\n\n",
              monolithic_divergence,
              monolithic_divergence <= 1e-3 ? "" : "  (FAIL: > 1e-3)");
  if (monolithic_divergence > 1e-3) ++failures;

  // ---- trace (reference run) ----------------------------------------------
  std::printf("gradient-ascent trajectory (threads=1, per-component "
              "bins):\n");
  for (const LearnerTrace& trace : reference_result.trace) {
    std::printf("  iter %2zu  objective %+10.4f  grad max-norm %8.5f  "
                "%.3fs\n",
                trace.iteration, trace.objective, trace.gradient_max_norm,
                trace.seconds);
  }
  std::printf("\n");

  // ---- learned vs uniform quality -----------------------------------------
  const std::vector<size_t>& eval = pack->eval_triples();
  Jocl jocl(options);
  JoclResult uniform_result =
      jocl.Infer(ds, sig, eval, Jocl::DefaultWeights()).MoveValueOrDie();
  JoclResult learned_result =
      jocl.Infer(ds, sig, eval, reference_weights).MoveValueOrDie();
  std::vector<size_t> gold_np = pack->GoldNp();
  std::vector<int64_t> gold_entities = pack->GoldEntities();
  double uniform_f1 =
      EvaluateClustering(uniform_result.np_cluster, gold_np).average_f1;
  double learned_f1 =
      EvaluateClustering(learned_result.np_cluster, gold_np).average_f1;
  double uniform_acc = LinkingAccuracy(uniform_result.np_link, gold_entities);
  double learned_acc = LinkingAccuracy(learned_result.np_link, gold_entities);
  std::printf("test quality: uniform NP F1 %.3f / link %.3f -> "
              "learned NP F1 %.3f / link %.3f\n\n",
              uniform_f1, uniform_acc, learned_f1, learned_acc);

  // ---- acceptance ---------------------------------------------------------
  double speedup_at_4 = 0.0;
  for (const ShardedRun& run : runs) {
    if (run.threads == 4 && run.shards == 0) speedup_at_4 = run.speedup;
  }
  const size_t hardware = std::thread::hardware_concurrency();
  const bool enforce = hardware >= 4;
  const bool pass = speedup_at_4 >= 2.0;
  if (enforce) {
    std::printf("acceptance (>= 2x at 4 threads): %s (%.2fx)\n",
                pass ? "PASS" : "FAIL", speedup_at_4);
    if (!pass) ++failures;
  } else {
    std::printf("acceptance (>= 2x at 4 threads): SKIP — host has %zu "
                "hardware threads (measured %.2fx)\n",
                hardware, speedup_at_4);
  }

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_learning.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out,
               "  \"labeled_triples\": %zu,\n  \"iterations\": %zu,\n"
               "  \"components\": %zu,\n  \"labels\": %zu,\n"
               "  \"hardware_threads\": %zu,\n",
               labeled.size(), reference_result.trace.size(),
               reference_stats.components, reference_stats.labels, hardware);
  std::fprintf(out, "  \"sequential_seconds\": %.4f,\n", sequential_seconds);
  std::fprintf(out, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const ShardedRun& run = runs[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"shards\": %zu, "
                 "\"seconds\": %.4f, \"speedup_vs_sequential\": %.2f, "
                 "\"identical\": %s}%s\n",
                 run.threads, run.shards, run.seconds, run.speedup,
                 run.identical ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"trace\": [\n");
  for (size_t i = 0; i < reference_result.trace.size(); ++i) {
    const LearnerTrace& trace = reference_result.trace[i];
    std::fprintf(out,
                 "    {\"iteration\": %zu, \"objective\": %.6f, "
                 "\"gradient_max_norm\": %.6f, \"seconds\": %.4f}%s\n",
                 trace.iteration, trace.objective, trace.gradient_max_norm,
                 trace.seconds,
                 i + 1 < reference_result.trace.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"quality\": {\"uniform_np_f1\": %.4f, "
               "\"learned_np_f1\": %.4f, \"uniform_link_acc\": %.4f, "
               "\"learned_link_acc\": %.4f},\n",
               uniform_f1, learned_f1, uniform_acc, learned_acc);
  std::fprintf(out, "  \"monolithic_divergence\": %.3e,\n",
               monolithic_divergence);
  std::fprintf(out, "  \"speedup_at_4_threads\": %.2f,\n", speedup_at_4);
  // null = not enforced on this host (< 4 hardware threads), never a
  // measured-but-skipped "true".
  std::fprintf(out, "  \"acceptance_4thread_speedup_ge_2x\": %s\n",
               !enforce ? "null" : (pass ? "true" : "false"));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  if (failures > 0) {
    std::printf("%d correctness/acceptance check(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { return jocl::bench::Run(); }
