// Extra ablation: label efficiency of the weight learner. The paper
// trains on the triples of 20% of ReVerb45K's entities; this bench sweeps
// the amount of labeled validation data and reports test-set quality,
// plus the joint graph's fragmentation (which is what makes the paper's
// §3.4 "distributed learning via graph segmentation" remark practical —
// see graph/flat_lbp.h).
#include "bench/bench_common.h"
#include "core/graph_builder.h"
#include "core/problem.h"
#include "graph/flat_lbp.h"

namespace jocl {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Learning curve + graph segmentation (ReVerb45K-like)", env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const auto& ds = pack->dataset();
  const auto& sig = pack->signals();
  const auto& eval = pack->eval_triples();
  std::vector<size_t> gold_np = pack->GoldNp();
  std::vector<int64_t> gold_entities = pack->GoldEntities();

  TablePrinter table({"Labeled triples", "NP Avg F1", "Linking Acc"});
  for (size_t budget : {0u, 25u, 50u, 100u, 200u, 300u}) {
    JoclOptions options;
    options.max_learning_triples = budget;
    Jocl jocl(options);
    std::vector<double> weights;
    if (budget == 0) {
      weights = Jocl::DefaultWeights();
    } else {
      weights = jocl.LearnWeights(ds, sig).MoveValueOrDie();
    }
    JoclResult result =
        jocl.Infer(ds, sig, eval, weights).MoveValueOrDie();
    table.AddRow({budget == 0 ? "0 (uniform weights)" : std::to_string(budget),
                  TablePrinter::Num(
                      EvaluateClustering(result.np_cluster, gold_np)
                          .average_f1),
                  TablePrinter::Num(
                      LinkingAccuracy(result.np_link, gold_entities))});
  }
  std::printf("%s\n", table.Render().c_str());

  // Fragmentation of the joint test graph: how parallel can LBP be?
  JoclProblem problem = BuildProblem(ds, sig, eval);
  JoclGraph jgraph = BuildJoclGraph(problem, sig, ds.ckb);
  std::vector<size_t> components = FactorGraphComponents(jgraph.graph);
  size_t count = 0;
  std::unordered_map<size_t, size_t> sizes;
  for (size_t c : components) {
    count = std::max(count, c + 1);
    ++sizes[c];
  }
  size_t largest = 0;
  for (const auto& [c, s] : sizes) largest = std::max(largest, s);
  std::printf("joint graph: %zu variables in %zu connected components "
              "(largest %zu) -> component-parallel LBP is near-ideal\n",
              jgraph.graph.variable_count(), count, largest);

  std::vector<double> weights = Jocl::DefaultWeights();
  Stopwatch sequential_watch;
  LbpOptions lbp_options;
  lbp_options.max_iterations = 20;
  {
    FlatLbpEngine engine(&jgraph.graph, &weights, lbp_options);
    engine.Run();
  }
  double sequential_s = sequential_watch.ElapsedSeconds();
  Stopwatch parallel_watch;
  RunParallelLbp(jgraph.graph, weights, lbp_options, 8);
  double parallel_s = parallel_watch.ElapsedSeconds();
  std::printf("LBP wall clock: sequential %.2fs, 8-thread component-"
              "parallel %.2fs (%.1fx)\n",
              sequential_s, parallel_s,
              parallel_s > 0 ? sequential_s / parallel_s : 0.0);
  std::printf("elapsed: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
