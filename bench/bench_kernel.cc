// LBP kernel bench: the vectorized message kernel vs the scalar
// reference, and the residual-priority schedule vs the staged sweep, on
// the head-component worst case — one giant loopy component with skewed
// hub degrees, the shape that dominates end-to-end inference time.
// Emits BENCH_kernel.json (path: JOCL_BENCH_OUT, default
// ./BENCH_kernel.json) for CI tracking.
//
// Hard-fail guards (exit nonzero):
//   * the vectorized kernel's marginals must be byte-identical to the
//     scalar reference's (on both the synthetic head world and the real
//     generated joint graph);
//   * vectorized must never regress below 0.9x scalar on the head
//     worlds (CI smoke floor, any scale);
//   * the residual run must certify convergence (max pending residual
//     below tolerance at stop) and match the staged decode (any scale);
//   * at full scale (JOCL_BENCH_SCALE >= 1): vectorized >= 1.5x scalar
//     on the head world under max-product (where the kernel flop loops
//     dominate; sum-product is bounded by the order-pinned log-sum-exp
//     chain), and the residual schedule needs >= 3x fewer message
//     updates than the staged sweep.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/graph_builder.h"
#include "core/problem.h"
#include "graph/compiled_graph.h"
#include "graph/flat_lbp.h"
#include "util/rng.h"

namespace jocl {
namespace bench {
namespace {

// The head-component worst case: a backbone chain with skewed cross
// links (low-index hubs collect most of the degree, like the giant
// canonicalization component does), unary evidence on every third
// variable and ternary ties on every fifth. Cardinalities 2..8.
FactorGraph MakeHeadHeavyGraph(Rng* rng, size_t head_vars) {
  FactorGraph g;
  g.set_weight_count(1);
  // Coupling strength decays away from the hubs: the hub region is
  // strongly coupled (slow mixing, many sweeps), the tail is weak
  // evidence that settles immediately — the profile a residual schedule
  // exploits and a staged sweep pays full price for.
  auto random_table = [&](size_t states, double amplitude) {
    std::vector<double> table(states);
    for (double& v : table) v = rng->UniformDouble(-amplitude, amplitude);
    return FeatureTable::Uniform(0, std::move(table));
  };
  auto coupling = [](size_t i) { return 1.5 * 32.0 / (32.0 + i); };
  std::vector<VariableId> head;
  for (size_t i = 0; i < head_vars; ++i) {
    head.push_back(g.AddVariable(2 + i % 7));
  }
  auto card = [&](VariableId v) { return g.variable(v).cardinality; };
  for (size_t i = 1; i < head.size(); ++i) {
    g.AddFactor({head[i - 1], head[i]},
                random_table(card(head[i - 1]) * card(head[i]),
                             coupling(i)))
        .ValueOrDie();
  }
  for (size_t i = 1; i < head.size(); ++i) {
    const size_t hub = static_cast<size_t>(
        rng->UniformUint64(std::max<size_t>(1, i / 4)));
    const VariableId other = head[hub == i ? i - 1 : i];
    g.AddFactor({head[hub], other},
                random_table(card(head[hub]) * card(other), coupling(i)))
        .ValueOrDie();
  }
  for (size_t i = 0; i < head.size(); i += 3) {
    g.AddFactor({head[i]}, random_table(card(head[i]), 1.5)).ValueOrDie();
  }
  for (size_t i = 5; i + 2 < head.size(); i += 5) {
    g.AddFactor({head[i], head[i + 1], head[i + 2]},
                random_table(card(head[i]) * card(head[i + 1]) *
                                 card(head[i + 2]),
                             coupling(i)))
        .ValueOrDie();
  }
  return g;
}

struct KernelRun {
  const char* world = "";
  size_t variables = 0;
  size_t factors = 0;
  double scalar_seconds = 0.0;
  double vectorized_seconds = 0.0;
  double speedup = 0.0;
  size_t message_updates = 0;
  size_t sweeps = 0;
  bool byte_identical = false;
};

// Times one (kernel) configuration over a precompiled graph: best of
// \p reps full Run() calls, result of the last.
double TimeKernel(const CompiledGraph& compiled,
                  const std::vector<double>& weights, LbpOptions options,
                  int reps, LbpResult* result) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    FlatLbpEngine engine(&compiled, &weights, options);
    Stopwatch watch;
    *result = engine.Run();
    double seconds = watch.ElapsedSeconds();
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

KernelRun CompareKernels(const char* world, const CompiledGraph& compiled,
                         const std::vector<double>& weights,
                         LbpOptions options, int reps) {
  KernelRun run;
  run.world = world;
  run.variables = compiled.variable_count();
  run.factors = compiled.factor_count();
  LbpResult scalar, vectorized;
  options.kernel = LbpKernel::kScalarReference;
  run.scalar_seconds = TimeKernel(compiled, weights, options, reps, &scalar);
  options.kernel = LbpKernel::kVectorized;
  run.vectorized_seconds =
      TimeKernel(compiled, weights, options, reps, &vectorized);
  run.speedup = run.vectorized_seconds > 0.0
                    ? run.scalar_seconds / run.vectorized_seconds
                    : 0.0;
  run.message_updates = vectorized.message_updates;
  run.sweeps = vectorized.iterations;
  // EXPECT_EQ-grade identity: identical op order means no bit may differ.
  run.byte_identical = vectorized.marginals == scalar.marginals &&
                       vectorized.final_residual == scalar.final_residual &&
                       vectorized.iterations == scalar.iterations;
  return run;
}

int Run() {
  int failures = 0;
  BenchEnv env = BenchEnv::FromEnv();
  Banner("LBP kernel: vectorized vs scalar, residual vs staged", env);
  const std::vector<double> unit_weights = {1.0};
  const int reps = 3;

  // ---- synthetic head-component world -------------------------------------
  size_t head_vars = static_cast<size_t>(1200 * env.scale);
  if (head_vars < 120) head_vars = 120;
  Rng rng(env.seed);
  FactorGraph head_graph = MakeHeadHeavyGraph(&rng, head_vars);
  CompiledGraph head_compiled = CompiledGraph::Compile(head_graph);
  LbpOptions head_options;
  head_options.max_iterations = 30;

  TablePrinter table({"World", "Vars", "Factors", "Scalar (s)",
                      "Vectorized (s)", "Speedup", "Identical"});
  auto add_row = [&](const KernelRun& run) {
    table.AddRow({run.world, std::to_string(run.variables),
                  std::to_string(run.factors),
                  TablePrinter::Num(run.scalar_seconds, 3),
                  TablePrinter::Num(run.vectorized_seconds, 3),
                  TablePrinter::Num(run.speedup, 2) + "x",
                  run.byte_identical ? "yes" : "NO (bug!)"});
  };
  KernelRun head_run = CompareKernels("head sum-product", head_compiled,
                                      unit_weights, head_options, reps);
  add_row(head_run);
  LbpOptions head_max_options = head_options;
  head_max_options.mode = LbpMode::kMaxProduct;
  KernelRun head_max_run = CompareKernels(
      "head max-product", head_compiled, unit_weights, head_max_options,
      reps);
  add_row(head_max_run);

  // ---- the real joint graph (generated ReVerb45K-like workload) -----------
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  JoclProblem problem = BuildProblem(pack->dataset(), pack->signals(),
                                     pack->eval_triples());
  JoclGraph jgraph = BuildJoclGraph(problem, pack->signals(),
                                    pack->dataset().ckb);
  CompiledGraph joint_compiled = CompiledGraph::Compile(jgraph.graph);
  std::vector<double> joint_weights = Jocl::DefaultWeights();
  LbpOptions joint_options;
  joint_options.factor_schedule = jgraph.schedule;
  KernelRun joint_run = CompareKernels("joint graph", joint_compiled,
                                       joint_weights, joint_options, reps);
  add_row(joint_run);
  std::printf("%s\n", table.Render().c_str());

  if (!head_run.byte_identical || !head_max_run.byte_identical ||
      !joint_run.byte_identical) {
    ++failures;
  }
  // CI smoke floor: a vectorized kernel slower than 0.9x scalar on the
  // synthetic head worlds is a regression regardless of scale or machine
  // (the joint-graph row is reported but not floor-guarded — its wall
  // time includes too much shared non-kernel work to be noise-stable).
  if (head_run.speedup < 0.9 || head_max_run.speedup < 0.9) {
    std::printf("GUARD FAILED: vectorized below 0.9x scalar\n");
    ++failures;
  }
  // The scale-dependent acceptance bars hold at the default workload
  // (JOCL_BENCH_SCALE >= 1); at reduced smoke scales they are reported
  // but informational. The >= 1.5x bar is measured on max-product, where
  // the kernel's flop loops dominate; sum-product is bounded by the
  // log-sum-exp transcendental chain, whose evaluation order byte
  // identity pins (see docs/benchmarks.md).
  const bool full_scale = env.scale >= 1.0;
  const bool accept_speedup = head_max_run.speedup >= 1.5;
  std::printf("acceptance (head max-product vectorized >= 1.5x): %s%s\n\n",
              accept_speedup ? "PASS" : "FAIL",
              full_scale ? "" : " (informational below scale 1)");
  if (full_scale && !accept_speedup) ++failures;

  // ---- residual-priority schedule vs staged sweep --------------------------
  // Both run the *vectorized* kernel; the contest is pure scheduling: how
  // many message updates buy a certified fixed point.
  LbpOptions staged_options = head_options;
  staged_options.max_iterations = 60;
  FlatLbpEngine staged_engine(&head_graph, &unit_weights, staged_options);
  LbpResult staged = staged_engine.Run();
  const std::vector<size_t> staged_decode = staged_engine.Decode();

  LbpOptions residual_options = staged_options;
  residual_options.schedule = LbpSchedule::kResidual;
  FlatLbpEngine residual_engine(&head_graph, &unit_weights,
                                residual_options);
  Stopwatch residual_watch;
  LbpResult residual = residual_engine.Run();
  double residual_seconds = residual_watch.ElapsedSeconds();
  const bool decode_match = residual_engine.Decode() == staged_decode;
  const double update_ratio =
      residual.message_updates > 0
          ? static_cast<double>(staged.message_updates) /
                static_cast<double>(residual.message_updates)
          : 0.0;

  std::printf("staged sweep:      %zu message updates (%zu sweeps, "
              "converged: %s)\n",
              staged.message_updates, staged.iterations,
              staged.converged ? "yes" : "no");
  std::printf("residual schedule: %zu message updates, %zu pops, %.3fs "
              "(%.1fx fewer updates)\n",
              residual.message_updates, residual.residual_pops,
              residual_seconds, update_ratio);
  std::printf("certificate: max residual %.2e at stop (tolerance %.0e), "
              "converged: %s, decode match: %s\n",
              residual.final_residual, residual_options.tolerance,
              residual.converged ? "yes" : "no",
              decode_match ? "yes" : "no");
  const bool accept_residual = residual.converged &&
                               residual.final_residual <
                                   residual_options.tolerance &&
                               decode_match && update_ratio >= 3.0;
  std::printf("acceptance (certified, decode-match, >= 3x fewer updates): "
              "%s%s\n\n",
              accept_residual ? "PASS" : "FAIL",
              full_scale ? "" : " (informational below scale 1)");
  // The certificate and decode checks are scale-independent correctness;
  // only the 3x update-ratio bar needs the full-scale workload.
  const bool residual_correct = residual.converged &&
                                residual.final_residual <
                                    residual_options.tolerance &&
                                decode_match;
  if (!residual_correct || (full_scale && !accept_residual)) ++failures;

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_kernel.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out, "  \"kernels\": [\n");
  const KernelRun* runs[] = {&head_run, &head_max_run, &joint_run};
  const size_t run_count = 3;
  for (size_t i = 0; i < run_count; ++i) {
    const KernelRun& run = *runs[i];
    std::fprintf(out,
                 "    {\"world\": \"%s\", \"variables\": %zu, "
                 "\"factors\": %zu, \"scalar_seconds\": %.4f, "
                 "\"vectorized_seconds\": %.4f, \"speedup\": %.2f, "
                 "\"message_updates\": %zu, \"sweeps\": %zu, "
                 "\"byte_identical\": %s}%s\n",
                 run.world, run.variables, run.factors, run.scalar_seconds,
                 run.vectorized_seconds, run.speedup, run.message_updates,
                 run.sweeps, run.byte_identical ? "true" : "false",
                 i + 1 < run_count ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"residual\": {\"staged_updates\": %zu, "
               "\"residual_updates\": %zu, \"residual_pops\": %zu, "
               "\"update_ratio\": %.2f, \"certificate\": %.6e, "
               "\"tolerance\": %.0e, \"converged\": %s, "
               "\"decode_match\": %s, \"seconds\": %.4f},\n",
               staged.message_updates, residual.message_updates,
               residual.residual_pops, update_ratio, residual.final_residual,
               residual_options.tolerance,
               residual.converged ? "true" : "false",
               decode_match ? "true" : "false", residual_seconds);
  std::fprintf(out, "  \"guard_vectorized_ge_0_9x\": %s,\n",
               head_run.speedup >= 0.9 && head_max_run.speedup >= 0.9
                   ? "true"
                   : "false");
  std::fprintf(out, "  \"full_scale_acceptance\": %s,\n",
               full_scale ? "true" : "false");
  std::fprintf(out, "  \"acceptance_vectorized_ge_1_5x\": %s,\n",
               accept_speedup ? "true" : "false");
  std::fprintf(out, "  \"acceptance_residual_ge_3x_fewer\": %s\n",
               accept_residual ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  if (failures > 0) {
    std::printf("%d correctness/acceptance check(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { return jocl::bench::Run(); }
