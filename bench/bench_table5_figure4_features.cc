// Reproduces Table 5 + Figure 4: the feature-combination variants
// JOCL-single / JOCL-double / JOCL-all, evaluated on NP canonicalization
// (Figure 4a) and OKB entity linking (Figure 4b) over ReVerb45K.
#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

// Approximate bar heights from the paper's Figure 4 (average F1 /
// accuracy).
struct PaperRow {
  const char* variant;
  double fig4a_avg_f1;
  double fig4b_accuracy;
};

constexpr PaperRow kPaper[] = {
    {"JOCL-single", 0.63, 0.60},
    {"JOCL-double", 0.74, 0.69},
    {"JOCL-all", 0.818, 0.761},
};

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Table 5 / Figure 4: feature-combination variants (ReVerb45K-like)",
         env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const auto& ds = pack->dataset();
  const auto& sig = pack->signals();
  const auto& eval = pack->eval_triples();
  std::vector<size_t> gold_np = pack->GoldNp();
  std::vector<int64_t> gold_entities = pack->GoldEntities();

  std::printf("Table 5 feature sets:\n"
              "  JOCL-single: F1/F3 f_idf | F2 f_idf | F4/F6 f_pop | F5 "
              "f_ngram\n"
              "  JOCL-double: + f_emb everywhere\n"
              "  JOCL-all   : every feature function\n\n");

  struct Variant {
    const char* name;
    FeatureMask mask;
  };
  std::vector<Variant> variants = {
      {"JOCL-single", FeatureMask::Single()},
      {"JOCL-double", FeatureMask::Double()},
      {"JOCL-all", FeatureMask::All()},
  };

  TablePrinter table({"Variant", "NP Avg F1 (Fig 4a)", "Paper",
                      "Linking Acc (Fig 4b)", "Paper"});
  for (size_t v = 0; v < variants.size(); ++v) {
    JoclOptions options;
    options.builder.features = variants[v].mask;
    Jocl jocl(options);
    JoclResult result = jocl.Run(ds, sig, eval).MoveValueOrDie();
    ClusteringScore score = EvaluateClustering(result.np_cluster, gold_np);
    double accuracy = LinkingAccuracy(result.np_link, gold_entities);
    table.AddRow({variants[v].name, TablePrinter::Num(score.average_f1),
                  TablePrinter::Num(kPaper[v].fig4a_avg_f1, 2),
                  TablePrinter::Num(accuracy),
                  TablePrinter::Num(kPaper[v].fig4b_accuracy, 2)});
  }
  std::printf("%s\nelapsed: %.1fs\n", table.Render().c_str(),
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
