// Extra ablation motivated by the paper's introduction: pipeline
// architectures propagate canonicalization errors into linking. Compares
// (a) canonicalize-then-link (JOCLcano groups, then popularity linking of
// each group), (b) link-then-group (JOCLlink), and (c) the joint JOCL.
#include <unordered_map>

#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Pipeline vs joint (ReVerb45K-like)", env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const auto& ds = pack->dataset();
  const auto& sig = pack->signals();
  const auto& eval = pack->eval_triples();
  std::vector<size_t> gold_np = pack->GoldNp();
  std::vector<int64_t> gold_entities = pack->GoldEntities();

  // (a) Pipeline: canonicalize first, then link each group as a whole by
  // pooled anchor popularity over its surfaces.
  Jocl cano(JoclOptions::CanonicalizationOnly());
  JoclResult cano_result = cano.Run(ds, sig, eval).MoveValueOrDie();
  std::vector<int64_t> pipeline_links(cano_result.np_cluster.size(), kNilId);
  {
    // Pool candidate scores per cluster.
    std::unordered_map<size_t, std::unordered_map<int64_t, double>> pooled;
    for (size_t m = 0; m < cano_result.np_cluster.size(); ++m) {
      size_t t = eval[m / 2];
      const std::string& surface = (m % 2 == 0)
                                       ? ds.okb.triple(t).subject
                                       : ds.okb.triple(t).object;
      for (const auto& c : ds.ckb.EntityCandidates(surface, 5)) {
        pooled[cano_result.np_cluster[m]][c.id] += c.popularity;
      }
    }
    std::unordered_map<size_t, int64_t> cluster_link;
    for (const auto& [cluster, scores] : pooled) {
      int64_t best = kNilId;
      double best_score = 0.0;
      for (const auto& [entity, score] : scores) {
        if (score > best_score) {
          best_score = score;
          best = entity;
        }
      }
      cluster_link[cluster] = best;
    }
    for (size_t m = 0; m < pipeline_links.size(); ++m) {
      auto it = cluster_link.find(cano_result.np_cluster[m]);
      if (it != cluster_link.end()) pipeline_links[m] = it->second;
    }
  }

  // (b) Link-only, (c) joint.
  Jocl link_only(JoclOptions::LinkingOnly());
  JoclResult link_result = link_only.Run(ds, sig, eval).MoveValueOrDie();
  Jocl joint;
  JoclResult joint_result = joint.Run(ds, sig, eval).MoveValueOrDie();

  TablePrinter table(
      {"Architecture", "NP Avg F1", "Linking Accuracy"});
  auto add = [&](const char* name, const std::vector<size_t>& clusters,
                 const std::vector<int64_t>& links) {
    table.AddRow({name,
                  TablePrinter::Num(
                      EvaluateClustering(clusters, gold_np).average_f1),
                  TablePrinter::Num(LinkingAccuracy(links, gold_entities))});
  };
  add("pipeline (cano -> link)", cano_result.np_cluster, pipeline_links);
  add("link -> group", link_result.np_cluster, link_result.np_link);
  add("JOCL (joint)", joint_result.np_cluster, joint_result.np_link);
  std::printf("%s\nelapsed: %.1fs\n", table.Render().c_str(),
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
