// Reproduces Table 1: NP canonicalization over ReVerb45K-like and
// NYTimes2018-like data — macro / micro / pairwise / average F1 for every
// method row of the paper. Paper values are printed alongside for shape
// comparison (absolute values differ: synthetic substrate).
#include "baselines/np_canonicalization.h"
#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

struct PaperRow {
  const char* method;
  double reverb_avg;
  double nyt_avg;
};

constexpr PaperRow kPaper[] = {
    {"Morph Norm", 0.544, 0.591},     {"Wikidata Integrator", 0.728, 0.699},
    {"Text Similarity", 0.684, 0.678}, {"IDF Token Overlap", 0.558, 0.563},
    {"Attribute Overlap", 0.595, 0.563}, {"CESI", 0.761, 0.735},
    {"SIST", 0.801, 0.776},           {"JOCL", 0.818, 0.805},
};

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Table 1: NP canonicalization (average F1 vs paper)", env);
  Stopwatch watch;

  std::vector<std::pair<const char*, std::unique_ptr<DataPack>>> packs;
  packs.emplace_back("ReVerb45K-like", DataPack::ReVerb(env));
  packs.emplace_back("NYTimes2018-like", DataPack::NyTimes(env));
  for (const auto& [name, pack] : packs) {
    std::printf("--- %s: %zu triples, %zu eval ---\n", name,
                pack->dataset().okb.size(), pack->eval_triples().size());
    std::vector<size_t> gold = pack->GoldNp();
    const auto& ds = pack->dataset();
    const auto& sig = pack->signals();
    const auto& eval = pack->eval_triples();

    // JOCL learns on the ReVerb validation split; for the NYT-like set
    // weights learned on ReVerb-like transfer (paper protocol).
    Jocl jocl;
    static std::vector<double> transfer_weights;
    std::vector<double> weights;
    if (!ds.validation_triples.empty()) {
      weights = jocl.LearnWeights(ds, sig).MoveValueOrDie();
      transfer_weights = weights;
    } else {
      weights = transfer_weights.empty() ? Jocl::DefaultWeights()
                                         : transfer_weights;
    }
    JoclResult jocl_result =
        jocl.Infer(ds, sig, eval, weights).MoveValueOrDie();

    struct Row {
      const char* method;
      std::vector<size_t> labels;
    };
    std::vector<Row> rows;
    rows.push_back({"Morph Norm", MorphNormCanonicalize(ds, eval)});
    rows.push_back(
        {"Wikidata Integrator", WikidataIntegratorCanonicalize(ds, eval)});
    rows.push_back({"Text Similarity", TextSimilarityCanonicalize(ds, eval)});
    rows.push_back(
        {"IDF Token Overlap", IdfTokenOverlapCanonicalize(ds, sig, eval)});
    rows.push_back(
        {"Attribute Overlap", AttributeOverlapCanonicalize(ds, eval)});
    rows.push_back({"CESI", CesiCanonicalize(ds, sig, eval)});
    rows.push_back({"SIST", SistCanonicalize(ds, sig, eval)});
    rows.push_back({"JOCL", jocl_result.np_cluster});

    bool is_reverb = std::string(name).find("ReVerb") != std::string::npos;
    TablePrinter table({"Method", "Macro F1", "Micro F1", "Pairwise F1",
                        "Average F1", "Paper Avg F1"});
    for (size_t r = 0; r < rows.size(); ++r) {
      ClusteringScore score = EvaluateClustering(rows[r].labels, gold);
      std::vector<std::string> cells = {rows[r].method};
      AddScoreCells(score, &cells);
      cells.push_back(TablePrinter::Num(
          is_reverb ? kPaper[r].reverb_avg : kPaper[r].nyt_avg));
      table.AddRow(std::move(cells));
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("elapsed: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
