// Google-benchmark microbenchmarks for the performance-critical kernels:
// string similarities, IDF scoring, HAC, SGNS training, LBP sweeps and
// factor-graph construction.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "cluster/hac.h"
#include "data/generator.h"
#include "embedding/word2vec.h"
#include "graph/flat_lbp.h"
#include "text/porter_stemmer.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace jocl {
namespace {

std::vector<std::string> MakePhrases(size_t n) {
  Rng rng(7);
  std::vector<std::string> phrases;
  static const char* kWords[] = {"university", "maryland", "institute",
                                 "warren",     "buffett",  "company",
                                 "kandor",     "merith",   "salvor"};
  for (size_t i = 0; i < n; ++i) {
    std::string p;
    size_t words = 1 + rng.UniformUint64(3);
    for (size_t w = 0; w < words; ++w) {
      if (w > 0) p += ' ';
      p += kWords[rng.UniformUint64(std::size(kWords))];
    }
    phrases.push_back(std::move(p));
  }
  return phrases;
}

void BM_Levenshtein(benchmark::State& state) {
  auto phrases = MakePhrases(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LevenshteinSimilarity(phrases[i % 64], phrases[(i + 7) % 64]));
    ++i;
  }
}
BENCHMARK(BM_Levenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  auto phrases = MakePhrases(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        JaroWinklerSimilarity(phrases[i % 64], phrases[(i + 7) % 64]));
    ++i;
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_NgramSimilarity(benchmark::State& state) {
  auto phrases = MakePhrases(64);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NgramSimilarity(phrases[i % 64], phrases[(i + 7) % 64]));
    ++i;
  }
}
BENCHMARK(BM_NgramSimilarity);

void BM_IdfSimilarity(benchmark::State& state) {
  auto phrases = MakePhrases(256);
  IdfTable idf;
  idf.AddPhrases(phrases);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        idf.Similarity(phrases[i % 256], phrases[(i + 13) % 256]));
    ++i;
  }
}
BENCHMARK(BM_IdfSimilarity);

void BM_PorterStem(benchmark::State& state) {
  static const char* kWords[] = {"relational", "canonicalization",
                                 "organizations", "founded", "membership"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PorterStem(kWords[i % 5]));
    ++i;
  }
}
BENCHMARK(BM_PorterStem);

void BM_Hac(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> matrix(n * n);
  for (size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      double s = rng.UniformDouble();
      matrix[i * n + j] = s;
      matrix[j * n + i] = s;
    }
  }
  HacOptions options;
  options.threshold = 0.7;
  options.linkage = Linkage::kAverage;
  Hac hac(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hac.ClusterMatrix(n, matrix));
  }
}
BENCHMARK(BM_Hac)->Arg(64)->Arg(256)->Arg(512);

void BM_Word2VecEpoch(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<std::string>> corpus;
  auto vocab = MakePhrases(128);
  for (int s = 0; s < 500; ++s) {
    std::vector<std::string> sentence;
    for (int w = 0; w < 8; ++w) {
      sentence.push_back(vocab[rng.UniformUint64(vocab.size())]);
    }
    corpus.push_back(std::move(sentence));
  }
  Word2VecOptions options;
  options.dim = 32;
  options.epochs = 1;
  for (auto _ : state) {
    Word2Vec trainer(options);
    benchmark::DoNotOptimize(trainer.Train(corpus));
  }
}
BENCHMARK(BM_Word2VecEpoch);

// A grid-ish loopy graph with binary variables (one connected component).
FactorGraph MakeGrid(size_t side) {
  FactorGraph g;
  g.set_weight_count(1);
  std::vector<VariableId> vars;
  for (size_t i = 0; i < side * side; ++i) vars.push_back(g.AddVariable(2));
  auto table = [] {
    return FeatureTable::Uniform(0, {0.7, 0.3, 0.3, 0.7});
  };
  for (size_t r = 0; r < side; ++r) {
    for (size_t c = 0; c < side; ++c) {
      if (c + 1 < side) {
        (void)g.AddFactor({vars[r * side + c], vars[r * side + c + 1]},
                          table());
      }
      if (r + 1 < side) {
        (void)g.AddFactor({vars[r * side + c], vars[(r + 1) * side + c]},
                          table());
      }
    }
  }
  return g;
}

void BM_LbpSweep(benchmark::State& state) {
  FactorGraph g = MakeGrid(static_cast<size_t>(state.range(0)));
  std::vector<double> weights = {1.0};
  for (auto _ : state) {
    LbpOptions options;
    options.max_iterations = 1;  // a single sweep (includes graph compile)
    FlatLbpEngine engine(&g, &weights, options);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_LbpSweep)->Arg(10)->Arg(20)->Arg(40);

void BM_GraphCompile(benchmark::State& state) {
  // Cost of freezing the builder graph into the CSR form.
  FactorGraph g = MakeGrid(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompiledGraph::Compile(g));
  }
}
BENCHMARK(BM_GraphCompile)->Arg(10)->Arg(20)->Arg(40);

void BM_LbpSweepPrecompiled(benchmark::State& state) {
  // The pure sweep cost over a shared compiled graph (the learner's
  // steady state: compile once, run many).
  FactorGraph g = MakeGrid(static_cast<size_t>(state.range(0)));
  CompiledGraph compiled = CompiledGraph::Compile(g);
  std::vector<double> weights = {1.0};
  for (auto _ : state) {
    LbpOptions options;
    options.max_iterations = 1;
    FlatLbpEngine engine(&compiled, &weights, options);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_LbpSweepPrecompiled)->Arg(10)->Arg(20)->Arg(40);

// The head-component worst case in miniature: a backbone chain with
// skewed hub cross-links, unary evidence and ternary ties, cards 2..8
// (one giant loopy component — the shape that dominates joint graphs).
FactorGraph MakeHeadHeavy(size_t head_vars) {
  Rng rng(11);
  FactorGraph g;
  g.set_weight_count(1);
  auto random_table = [&](size_t states) {
    std::vector<double> table(states);
    for (double& v : table) v = rng.UniformDouble(-1.5, 1.5);
    return FeatureTable::Uniform(0, std::move(table));
  };
  std::vector<VariableId> head;
  for (size_t i = 0; i < head_vars; ++i) {
    head.push_back(g.AddVariable(2 + i % 7));
  }
  auto card = [&](VariableId v) { return g.variable(v).cardinality; };
  for (size_t i = 1; i < head.size(); ++i) {
    (void)g.AddFactor({head[i - 1], head[i]},
                      random_table(card(head[i - 1]) * card(head[i])));
  }
  for (size_t i = 1; i < head.size(); ++i) {
    const size_t hub = static_cast<size_t>(
        rng.UniformUint64(std::max<size_t>(1, i / 4)));
    const VariableId other = head[hub == i ? i - 1 : i];
    (void)g.AddFactor({head[hub], other},
                      random_table(card(head[hub]) * card(other)));
  }
  for (size_t i = 0; i < head.size(); i += 3) {
    (void)g.AddFactor({head[i]}, random_table(card(head[i])));
  }
  for (size_t i = 5; i + 2 < head.size(); i += 5) {
    (void)g.AddFactor({head[i], head[i + 1], head[i + 2]},
                      random_table(card(head[i]) * card(head[i + 1]) *
                                   card(head[i + 2])));
  }
  return g;
}

void BM_LbpKernelHeadHeavy(benchmark::State& state) {
  // Arg0: head variables; Arg1: 0 = vectorized kernel, 1 = scalar
  // reference. Both produce byte-identical marginals; the ratio of these
  // two rows is the kernel speedup bench_kernel guards.
  FactorGraph g = MakeHeadHeavy(static_cast<size_t>(state.range(0)));
  CompiledGraph compiled = CompiledGraph::Compile(g);
  std::vector<double> weights = {1.0};
  for (auto _ : state) {
    LbpOptions options;
    options.max_iterations = 5;
    options.kernel = state.range(1) == 0 ? LbpKernel::kVectorized
                                         : LbpKernel::kScalarReference;
    FlatLbpEngine engine(&compiled, &weights, options);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_LbpKernelHeadHeavy)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({800, 0})
    ->Args({800, 1});

void BM_LbpScheduleHeadHeavy(benchmark::State& state) {
  // Arg0: head variables; Arg1: 0 = staged sweeps, 1 = residual-priority
  // queue. Residual runs to its convergence certificate within the same
  // sweep budget.
  FactorGraph g = MakeHeadHeavy(static_cast<size_t>(state.range(0)));
  CompiledGraph compiled = CompiledGraph::Compile(g);
  std::vector<double> weights = {1.0};
  for (auto _ : state) {
    LbpOptions options;
    options.max_iterations = 30;
    options.schedule = state.range(1) == 0 ? LbpSchedule::kStaged
                                           : LbpSchedule::kResidual;
    FlatLbpEngine engine(&compiled, &weights, options);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_LbpScheduleHeadHeavy)
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({800, 0})
    ->Args({800, 1});

void BM_LbpComponentParallel(benchmark::State& state) {
  // Fragmented workload (many disjoint grids — the shape of JOCL's joint
  // graphs) across a worker pool; Arg is the thread count.
  FactorGraph g;
  g.set_weight_count(1);
  auto table = [] {
    return FeatureTable::Uniform(0, {0.7, 0.3, 0.3, 0.7});
  };
  constexpr size_t kChains = 64;
  constexpr size_t kLen = 40;
  for (size_t chain = 0; chain < kChains; ++chain) {
    VariableId prev = g.AddVariable(2);
    for (size_t i = 1; i < kLen; ++i) {
      VariableId v = g.AddVariable(2);
      (void)g.AddFactor({prev, v}, table());
      prev = v;
    }
  }
  CompiledGraph compiled = CompiledGraph::Compile(g);
  std::vector<double> weights = {1.0};
  for (auto _ : state) {
    LbpOptions options;
    options.max_iterations = 10;
    options.num_threads = static_cast<size_t>(state.range(0));
    FlatLbpEngine engine(&compiled, &weights, options);
    benchmark::DoNotOptimize(engine.Run());
  }
}
BENCHMARK(BM_LbpComponentParallel)->Arg(1)->Arg(2)->Arg(4);

void BM_GenerateDataset(benchmark::State& state) {
  for (auto _ : state) {
    GeneratorOptions options;
    options.num_entities = 100;
    options.num_relations = 12;
    options.num_triples = 500;
    benchmark::DoNotOptimize(GenerateDataset(options, "bench"));
  }
}
BENCHMARK(BM_GenerateDataset);

}  // namespace
}  // namespace jocl

BENCHMARK_MAIN();
