// Distributed serving bench: what sharding the CanonStore buys. Times
// the partitioner itself (split + merge byte-identity is a hard
// correctness gate), sweeps aggregate keep-alive QPS over 1 / 2 / 4
// shard backends with a shard-aware client (each request hashed to its
// owner, the router hop elided — the scaling ceiling), measures the
// same load through a fronting CanonRouter (the extra hop's cost), and
// sizes delta snapshots against full ones (bytes + serialize/apply
// time). Emits BENCH_serve_distributed.json (path: JOCL_BENCH_OUT,
// default ./BENCH_serve_distributed.json) for CI tracking.
//
// Acceptance (ISSUE 8): every response byte-checked against the
// monolith (hard fail), and on machines with >= 4 cores the 2-shard
// aggregate QPS must reach 1.5x the single-shard figure — the CI gate.
// Single-core runners still run everything but skip the scaling gate:
// with one core there is no parallelism for a second shard to claim.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "core/session.h"
#include "serve/canon_store.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_store.h"
#include "serve/snapshot_io.h"

namespace jocl {
namespace bench {
namespace {

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

struct Phase {
  double wall_seconds = 0.0;
  size_t requests = 0;
  size_t errors = 0;
  size_t body_mismatches = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

void PrintPhase(const char* label, const Phase& phase) {
  std::printf("%s: %zu requests, %zu errors, %zu body mismatches, "
              "%.0f QPS, p50 %.3fms p99 %.3fms\n",
              label, phase.requests, phase.errors, phase.body_mismatches,
              phase.qps, phase.p50_ms, phase.p99_ms);
}

/// One read workload item: a target, the shard that owns it, and the
/// exact bytes the monolith renders for it.
struct WorkItem {
  std::string target;
  uint32_t shard = 0;
  std::string expected_body;
};

/// \p clients keep-alive readers, each holding one connection per
/// backend and hashing every request straight to its owner shard
/// (\p ports). Every body is byte-checked against the monolith.
Phase RunShardedPhase(const std::vector<int>& ports,
                      const std::vector<WorkItem>& work, size_t clients,
                      size_t per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> errors{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      std::vector<HttpConnection> conns(ports.size());
      for (size_t i = 0; i < per_client; ++i) {
        const WorkItem& item = work[(c + i * 7) % work.size()];
        HttpConnection& conn = conns[item.shard];
        if (!conn.connected()) {
          Result<HttpConnection> fresh =
              HttpConnection::Connect(ports[item.shard]);
          if (!fresh.ok()) {
            errors.fetch_add(1);
            continue;
          }
          conn = fresh.MoveValueOrDie();
        }
        Stopwatch request_watch;
        Result<HttpResponse> response = conn.Get(item.target);
        const double ms = request_watch.ElapsedMillis();
        if (!response.ok() || response.ValueOrDie().status != 200) {
          errors.fetch_add(1);
        } else if (response.ValueOrDie().body != item.expected_body) {
          mismatches.fetch_add(1);
        } else {
          latencies[c].push_back(ms);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  Phase phase;
  phase.wall_seconds = wall.ElapsedSeconds();
  phase.requests = clients * per_client;
  phase.errors = errors.load();
  phase.body_mismatches = mismatches.load();
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  phase.qps = phase.wall_seconds > 0.0
                  ? static_cast<double>(all.size()) / phase.wall_seconds
                  : 0.0;
  phase.p50_ms = Percentile(all, 50.0);
  phase.p99_ms = Percentile(all, 99.0);
  return phase;
}

/// Same workload through one port (the router): the shard hash happens
/// on the server side instead of in the client.
Phase RunRoutedPhase(int port, const std::vector<WorkItem>& work,
                     size_t clients, size_t per_client) {
  std::vector<int> one_port = {port};
  std::vector<WorkItem> rehomed = work;
  for (WorkItem& item : rehomed) item.shard = 0;
  return RunShardedPhase(one_port, rehomed, clients, per_client);
}

void EmitPhase(FILE* out, const char* name, size_t shards, size_t clients,
               const Phase& phase, double partition_seconds,
               bool trailing_comma) {
  std::fprintf(out,
               "    {\"name\": \"%s\", \"shards\": %zu, \"clients\": %zu, "
               "\"requests\": %zu, \"errors\": %zu, \"body_mismatches\": "
               "%zu, \"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
               "\"partition_seconds\": %.5f}%s\n",
               name, shards, clients, phase.requests, phase.errors,
               phase.body_mismatches, phase.qps, phase.p50_ms, phase.p99_ms,
               partition_seconds, trailing_comma ? "," : "");
}

int Run() {
  int failures = 0;
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Distributed serving tier (sharded CanonStore + CanonRouter)", env);

  auto pack = DataPack::ReVerb(env);
  const Dataset& ds = pack->dataset();
  const std::vector<size_t>& eval = pack->eval_triples();
  std::printf("inferring over %zu triples...\n", eval.size());
  JoclResult result =
      JoclRuntime().Infer(ds, pack->signals(), eval).MoveValueOrDie();
  JoclProblem problem = BuildProblem(ds, pack->signals(), eval);
  const CanonStore monolith =
      BuildCanonStore(problem, result, ds.ckb, /*generation=*/1);
  const std::string monolith_bytes = SerializeSnapshot(monolith);
  std::printf("monolith: %zu NP surfaces in %zu clusters, %zu snapshot "
              "bytes\n",
              monolith.np.surface_count(), monolith.np.cluster_count(),
              monolith_bytes.size());

  // ---- read workload (targets + expected monolith bytes) ------------------
  const ServeCounters no_counters;
  std::vector<std::string> surfaces;
  for (size_t s = 0; s < monolith.np.surface_count(); ++s) {
    surfaces.emplace_back(monolith.SurfaceText(CanonKind::kNp, s));
  }

  const size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  const size_t kClients = 4;
  const size_t kPerClient = static_cast<size_t>(800.0 * env.scale) + 100;
  const std::vector<size_t> shard_counts = {1, 2, 4};

  // ---- partition + merge (correctness gate) + direct scaling sweep --------
  std::vector<Phase> sweep;
  std::vector<double> partition_seconds;
  for (size_t num_shards : shard_counts) {
    Stopwatch partition_watch;
    Result<std::vector<CanonStore>> split =
        BuildShardedCanonStores(monolith, static_cast<uint32_t>(num_shards));
    if (!split.ok()) {
      std::printf("FAIL: partition into %zu shards: %s\n", num_shards,
                  split.status().ToString().c_str());
      return 1;
    }
    std::vector<CanonStore> shards = split.MoveValueOrDie();
    const double seconds = partition_watch.ElapsedSeconds();
    partition_seconds.push_back(seconds);
    Result<CanonStore> merged = MergeShardedCanonStores(shards);
    if (!merged.ok() ||
        SerializeSnapshot(merged.ValueOrDie()) != monolith_bytes) {
      std::printf("FAIL: %zu-shard merge is not byte-identical to the "
                  "monolith\n",
                  num_shards);
      ++failures;
    }
    std::printf("partitioned into %zu shard(s) in %.4fs (merge "
                "byte-identical: yes)\n",
                num_shards, seconds);

    // One event thread per backend: the scaling story is across
    // processes-worth of servers, not epoll threads within one.
    ServeOptions options;
    options.num_workers = 1;
    std::vector<std::unique_ptr<CanonServer>> servers;
    std::vector<int> ports;
    for (size_t k = 0; k < num_shards; ++k) {
      servers.push_back(std::make_unique<CanonServer>(options));
      Status status = servers.back()->Start();
      if (!status.ok()) {
        std::printf("ERROR: %s\n", status.ToString().c_str());
        return 1;
      }
      servers.back()->Publish(
          std::make_shared<const CanonStore>(std::move(shards[k])));
      ports.push_back(servers.back()->port());
    }
    std::vector<WorkItem> work;
    for (size_t i = 0; i < 32 && i < surfaces.size(); ++i) {
      WorkItem item;
      item.target = "/lookup?surface=" + UrlEncode(surfaces[i]);
      item.shard =
          ShardOfSurface(surfaces[i], static_cast<uint32_t>(num_shards));
      int status = 0;
      item.expected_body = HandleCanonRequest(&monolith, "GET", item.target,
                                              no_counters, &status);
      if (status != 200) continue;
      work.push_back(std::move(item));
    }
    Phase phase = RunShardedPhase(ports, work, kClients, kPerClient);
    char label[64];
    std::snprintf(label, sizeof(label), "direct sharded (%zu shards)",
                  num_shards);
    PrintPhase(label, phase);
    if (phase.errors > 0 || phase.body_mismatches > 0) ++failures;
    sweep.push_back(phase);
    for (auto& server : servers) server->Stop();
  }

  const double qps_1 = sweep[0].qps;
  const double qps_2 = sweep[1].qps;
  const double qps_4 = sweep[2].qps;
  const double speedup_2 = qps_1 > 0.0 ? qps_2 / qps_1 : 0.0;
  const double speedup_4 = qps_1 > 0.0 ? qps_4 / qps_1 : 0.0;
  std::printf("aggregate QPS scaling: 1 shard %.0f, 2 shards %.0f (%.2fx), "
              "4 shards %.0f (%.2fx)\n",
              qps_1, qps_2, speedup_2, qps_4, speedup_4);
  const bool gate_scaling = hardware >= 4;
  if (gate_scaling && speedup_2 < 1.5) {
    std::printf("FAIL: 2-shard aggregate QPS is %.2fx the single shard "
                "(gate: >= 1.5x on >= 4 cores)\n",
                speedup_2);
    ++failures;
  } else if (!gate_scaling) {
    std::printf("note: scaling gate skipped (%zu hardware thread(s) — "
                "shards share one core here)\n",
                hardware);
  }

  // ---- router-fronted phase -----------------------------------------------
  constexpr size_t kRouterShards = 4;
  std::vector<CanonStore> router_shards =
      BuildShardedCanonStores(monolith, kRouterShards).MoveValueOrDie();
  ServeOptions backend_options;
  backend_options.num_workers = 1;
  std::vector<std::unique_ptr<CanonServer>> backends;
  std::vector<int> backend_ports;
  for (size_t k = 0; k < kRouterShards; ++k) {
    backends.push_back(std::make_unique<CanonServer>(backend_options));
    Status status = backends.back()->Start();
    if (!status.ok()) {
      std::printf("ERROR: %s\n", status.ToString().c_str());
      return 1;
    }
    backends.back()->Publish(
        std::make_shared<const CanonStore>(std::move(router_shards[k])));
    backend_ports.push_back(backends.back()->port());
  }
  ServeOptions router_options;
  router_options.num_workers = std::min<size_t>(4, hardware);
  CanonRouter router(backend_ports, router_options);
  Status status = router.Start();
  if (!status.ok()) {
    std::printf("ERROR: %s\n", status.ToString().c_str());
    return 1;
  }
  std::vector<WorkItem> routed_work;
  for (size_t i = 0; i < 32 && i < surfaces.size(); ++i) {
    WorkItem item;
    item.target = "/lookup?surface=" + UrlEncode(surfaces[i]);
    int http_status = 0;
    item.expected_body = HandleCanonRequest(&monolith, "GET", item.target,
                                            no_counters, &http_status);
    if (http_status != 200) continue;
    routed_work.push_back(std::move(item));
  }
  Phase routed =
      RunRoutedPhase(router.port(), routed_work, kClients, kPerClient);
  PrintPhase("router-fronted (4 shards)", routed);
  if (routed.errors > 0 || routed.body_mismatches > 0) ++failures;
  const double router_overhead =
      routed.qps > 0.0 ? qps_4 / routed.qps : 0.0;
  std::printf("router hop cost: direct 4-shard %.0f QPS vs routed %.0f QPS "
              "(%.2fx)\n",
              qps_4, routed.qps, router_overhead);
  router.Stop();
  for (auto& backend : backends) backend->Stop();

  // ---- delta snapshots vs full --------------------------------------------
  // A realistic increment: two successive generations out of ONE
  // ingestion session, the way jocl_serve republishes — interning is
  // append-only there, so consecutive stores share long byte prefixes
  // per chunk, which is exactly what the delta format rides. (Two
  // independent builds share almost nothing: their interners diverge
  // at the first differing surface.)
  JoclSession session(&ds, &pack->signals());
  std::vector<CanonStore> session_generations;
  session.SetPublishCallback([&](const JoclSession& s) {
    session_generations.push_back(BuildCanonStore(
        s.problem(), s.result(), ds.ckb, s.generation()));
  });
  std::vector<size_t> first_half(
      eval.begin(), eval.begin() + static_cast<long>(eval.size() / 2));
  std::vector<size_t> second_half(
      eval.begin() + static_cast<long>(eval.size() / 2), eval.end());
  Status ingest = session.AddTriples(first_half);
  if (ingest.ok()) ingest = session.AddTriples(second_half);
  if (!ingest.ok() || session_generations.size() != 2) {
    std::printf("ERROR: delta-phase ingestion failed: %s\n",
                ingest.ToString().c_str());
    return 1;
  }
  const CanonStore& base_store = session_generations[0];
  const CanonStore& target_store = session_generations[1];
  Stopwatch delta_serialize_watch;
  const std::string delta = SerializeDeltaSnapshot(base_store, target_store);
  const double delta_serialize_seconds =
      delta_serialize_watch.ElapsedSeconds();
  Stopwatch delta_apply_watch;
  Result<CanonStore> replayed = ApplyDeltaSnapshot(base_store, delta);
  const double delta_apply_seconds = delta_apply_watch.ElapsedSeconds();
  const std::string target_bytes = SerializeSnapshot(target_store);
  bool delta_identical =
      replayed.ok() &&
      SerializeSnapshot(replayed.ValueOrDie()) == target_bytes;
  const double delta_ratio =
      target_bytes.empty()
          ? 0.0
          : static_cast<double>(delta.size()) /
                static_cast<double>(target_bytes.size());
  std::printf("delta snapshot: %zu bytes vs %zu full (%.1f%%), serialize "
              "%.4fs, apply+validate %.4fs, replay byte-identical: %s\n",
              delta.size(), target_bytes.size(), delta_ratio * 100.0,
              delta_serialize_seconds, delta_apply_seconds,
              delta_identical ? "yes" : "NO (bug!)");
  if (!delta_identical) ++failures;

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_serve_distributed.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out, "  \"triples\": %zu,\n", eval.size());
  std::fprintf(out, "  \"hardware_threads\": %zu,\n", hardware);
  std::fprintf(out, "  \"shard_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    EmitPhase(out, "direct", shard_counts[i], kClients, sweep[i],
              partition_seconds[i], i + 1 < sweep.size());
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"router\": [\n");
  EmitPhase(out, "routed", kRouterShards, kClients, routed, 0.0, false);
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"scaling\": {\"qps_1\": %.1f, \"qps_2\": %.1f, "
               "\"qps_4\": %.1f, \"speedup_2\": %.3f, \"speedup_4\": %.3f, "
               "\"router_overhead\": %.3f, \"gated\": %s},\n",
               qps_1, qps_2, qps_4, speedup_2, speedup_4, router_overhead,
               gate_scaling ? "true" : "false");
  std::fprintf(out,
               "  \"delta_snapshot\": {\"delta_bytes\": %zu, "
               "\"full_bytes\": %zu, \"ratio\": %.4f, "
               "\"serialize_seconds\": %.5f, \"apply_seconds\": %.5f, "
               "\"replay_identical\": %s},\n",
               delta.size(), target_bytes.size(), delta_ratio,
               delta_serialize_seconds, delta_apply_seconds,
               delta_identical ? "true" : "false");
  std::fprintf(out, "  \"failures\": %d\n}\n", failures);
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);

  if (failures > 0) {
    std::printf("%d failure(s)\n", failures);
    return 1;
  }
  std::printf("all distributed serving gates passed\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { return jocl::bench::Run(); }
