// Reproduces Table 4: the interaction ablation on ReVerb45K — JOCLcano
// (canonicalization factors only), JOCLlink (linking factors only) and the
// full joint framework.
#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Table 4: interaction ablation (ReVerb45K-like)", env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const auto& ds = pack->dataset();
  const auto& sig = pack->signals();
  const auto& eval = pack->eval_triples();
  std::vector<size_t> gold_np = pack->GoldNp();
  std::vector<int64_t> gold_entities = pack->GoldEntities();

  struct Variant {
    const char* name;
    JoclOptions options;
    bool report_cano;
    bool report_link;
    double paper_avg_f1;
    double paper_accuracy;
  };
  std::vector<Variant> variants = {
      {"JOCLcano", JoclOptions::CanonicalizationOnly(), true, false, 0.735,
       -1.0},
      {"JOCLlink", JoclOptions::LinkingOnly(), false, true, -1.0, 0.744},
      {"JOCL", JoclOptions(), true, true, 0.818, 0.761},
  };

  TablePrinter table({"Variant", "Macro F1", "Micro F1", "Pairwise F1",
                      "Average F1", "Accuracy", "Paper AvgF1",
                      "Paper Acc"});
  for (auto& variant : variants) {
    Jocl jocl(variant.options);
    JoclResult result = jocl.Run(ds, sig, eval).MoveValueOrDie();
    std::vector<std::string> cells = {variant.name};
    if (variant.report_cano) {
      ClusteringScore score = EvaluateClustering(result.np_cluster, gold_np);
      AddScoreCells(score, &cells);
    } else {
      cells.insert(cells.end(), {"-", "-", "-", "-"});
    }
    cells.push_back(variant.report_link
                        ? TablePrinter::Num(LinkingAccuracy(result.np_link,
                                                            gold_entities))
                        : "-");
    cells.push_back(variant.paper_avg_f1 < 0
                        ? "-"
                        : TablePrinter::Num(variant.paper_avg_f1));
    cells.push_back(variant.paper_accuracy < 0
                        ? "-"
                        : TablePrinter::Num(variant.paper_accuracy));
    table.AddRow(std::move(cells));
  }
  std::printf("%s\nelapsed: %.1fs\n", table.Render().c_str(),
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
