// Reproduces Table 2: RP canonicalization on ReVerb45K — AMIE, PATTY,
// SIST and JOCL, scored with macro / micro / pairwise / average F1.
#include "baselines/rp_canonicalization.h"
#include "bench/bench_common.h"

namespace jocl {
namespace bench {
namespace {

struct PaperRow {
  const char* method;
  double avg_f1;
};

constexpr PaperRow kPaper[] = {
    {"AMIE", 0.761},
    {"PATTY", 0.819},
    {"SIST", 0.864},
    {"JOCL", 0.874},
};

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Table 2: RP canonicalization on ReVerb45K-like", env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);
  const auto& ds = pack->dataset();
  const auto& sig = pack->signals();
  const auto& eval = pack->eval_triples();
  std::vector<size_t> gold = pack->GoldRp();

  Jocl jocl;
  JoclResult jocl_result = jocl.Run(ds, sig, eval).MoveValueOrDie();

  struct Row {
    const char* method;
    std::vector<size_t> labels;
  };
  std::vector<Row> rows;
  rows.push_back({"AMIE", AmieCanonicalize(ds, sig, eval)});
  rows.push_back({"PATTY", PattyCanonicalize(ds, eval)});
  rows.push_back({"SIST", SistRpCanonicalize(ds, sig, eval)});
  rows.push_back({"JOCL", jocl_result.rp_cluster});

  TablePrinter table({"Method", "Macro F1", "Micro F1", "Pairwise F1",
                      "Average F1", "Paper Avg F1"});
  for (size_t r = 0; r < rows.size(); ++r) {
    ClusteringScore score = EvaluateClustering(rows[r].labels, gold);
    std::vector<std::string> cells = {rows[r].method};
    AddScoreCells(score, &cells);
    cells.push_back(TablePrinter::Num(kPaper[r].avg_f1));
    table.AddRow(std::move(cells));
  }
  std::printf("%s\nelapsed: %.1fs\n", table.Render().c_str(),
              watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
