// Serving-layer bench: what the canonical-KB read path costs. Measures
// in-process CanonStore lookups (the floor), HTTP round trips through
// jocl_serve's CanonServer in both connection-per-request and
// keep-alive modes (QPS + p50/p99 latency), a keep-alive client sweep
// (1/4/16/64 connections), the pre-rendered cache against the
// allocating renderer, the same load under continuous store
// republication (the RCU swap stall), and snapshot save/load. Emits
// BENCH_serve.json (path: JOCL_BENCH_OUT, default ./BENCH_serve.json)
// for CI tracking.
//
// Acceptance (ISSUE 4): snapshot round trip byte-identical; the JSON
// must report p99 lookup latency and QPS.
// Acceptance (ISSUE 7): keep-alive QPS at 16 clients must beat the
// connection-per-request QPS at 16 clients — this process exits
// nonzero otherwise, which is the CI gate.
// Acceptance (ISSUE 9): keep-alive QPS with request-latency histograms
// live must be >= 0.95x a metrics-off server (ServeOptions::metrics =
// false) — `metrics_overhead_ratio` in the JSON, also a CI gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/runtime.h"
#include "serve/canon_store.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/snapshot_io.h"

namespace jocl {
namespace bench {
namespace {

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

struct HttpPhase {
  double wall_seconds = 0.0;
  size_t requests = 0;
  size_t errors = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

HttpPhase FinishPhase(const Stopwatch& wall, size_t requests, size_t errors,
                      const std::vector<std::vector<double>>& latencies) {
  HttpPhase phase;
  phase.wall_seconds = wall.ElapsedSeconds();
  phase.requests = requests;
  phase.errors = errors;
  std::vector<double> all;
  for (const auto& per_thread : latencies) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  phase.qps = phase.wall_seconds > 0.0
                  ? static_cast<double>(all.size()) / phase.wall_seconds
                  : 0.0;
  phase.p50_ms = Percentile(all, 50.0);
  phase.p99_ms = Percentile(all, 99.0);
  return phase;
}

/// Connection-per-request mode: \p clients concurrent readers, each
/// request opening a fresh TCP connection (the pre-PR 7 client).
/// Latencies are per full round trip (connect + request + response).
HttpPhase RunHttpPhase(int port, const std::vector<std::string>& targets,
                       size_t clients, size_t per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (size_t i = 0; i < per_client; ++i) {
        const std::string& target = targets[(c + i) % targets.size()];
        Stopwatch request_watch;
        Result<HttpResponse> response = HttpGet(port, target);
        const double ms = request_watch.ElapsedMillis();
        if (!response.ok() || response.ValueOrDie().status != 200 ||
            !LooksLikeJson(response.ValueOrDie().body)) {
          errors.fetch_add(1);
        } else {
          latencies[c].push_back(ms);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return FinishPhase(wall, clients * per_client, errors.load(), latencies);
}

/// Keep-alive mode: each client holds ONE persistent connection for all
/// its requests (reconnecting only if the server drops it). Latencies
/// are per request on the warm connection.
HttpPhase RunKeepAlivePhase(int port, const std::vector<std::string>& targets,
                            size_t clients, size_t per_client) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> errors{0};
  std::vector<std::thread> threads;
  Stopwatch wall;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      HttpConnection conn;
      for (size_t i = 0; i < per_client; ++i) {
        if (!conn.connected()) {
          Result<HttpConnection> fresh = HttpConnection::Connect(port);
          if (!fresh.ok()) {
            errors.fetch_add(1);
            continue;
          }
          conn = fresh.MoveValueOrDie();
        }
        const std::string& target = targets[(c + i) % targets.size()];
        Stopwatch request_watch;
        Result<HttpResponse> response = conn.Get(target);
        const double ms = request_watch.ElapsedMillis();
        if (!response.ok() || response.ValueOrDie().status != 200 ||
            !LooksLikeJson(response.ValueOrDie().body)) {
          errors.fetch_add(1);
        } else {
          latencies[c].push_back(ms);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return FinishPhase(wall, clients * per_client, errors.load(), latencies);
}

void PrintPhase(const char* label, const HttpPhase& phase) {
  std::printf("%s: %zu requests, %zu errors, %.0f QPS, p50 %.3fms "
              "p99 %.3fms\n",
              label, phase.requests, phase.errors, phase.qps, phase.p50_ms,
              phase.p99_ms);
}

void EmitPhase(FILE* out, const char* name, size_t clients,
               const HttpPhase& phase, bool trailing_comma) {
  std::fprintf(out,
               "  \"%s\": {\"clients\": %zu, \"requests\": %zu, "
               "\"errors\": %zu, \"qps\": %.1f, \"p50_ms\": %.4f, "
               "\"p99_ms\": %.4f}%s\n",
               name, clients, phase.requests, phase.errors, phase.qps,
               phase.p50_ms, phase.p99_ms, trailing_comma ? "," : "");
}

int Run() {
  int failures = 0;
  BenchEnv env = BenchEnv::FromEnv();
  Banner("Canonical-KB serving layer (CanonStore + jocl_serve)", env);

  auto pack = DataPack::ReVerb(env);
  const Dataset& ds = pack->dataset();
  const std::vector<size_t>& eval = pack->eval_triples();
  std::printf("inferring over %zu triples...\n", eval.size());
  JoclResult result =
      JoclRuntime().Infer(ds, pack->signals(), eval).MoveValueOrDie();
  JoclProblem problem = BuildProblem(ds, pack->signals(), eval);

  Stopwatch build_watch;
  auto store = std::make_shared<const CanonStore>(
      BuildCanonStore(problem, result, ds.ckb, /*generation=*/1));
  const double build_seconds = build_watch.ElapsedSeconds();
  std::printf("store: %zu NP surfaces in %zu clusters, %zu RP surfaces in "
              "%zu clusters (built in %.3fs)\n",
              store->np.surface_count(), store->np.cluster_count(),
              store->rp.surface_count(), store->rp.cluster_count(),
              build_seconds);

  // ---- snapshot round trip ------------------------------------------------
  Stopwatch save_watch;
  const std::string bytes = SerializeSnapshot(*store);
  const double serialize_seconds = save_watch.ElapsedSeconds();
  double load_seconds = 0.0;
  bool round_trip_identical = true;
  for (int rep = 0; rep < 3; ++rep) {
    Stopwatch load_watch;
    Result<CanonStore> loaded = DeserializeSnapshot(bytes);
    const double seconds = load_watch.ElapsedSeconds();
    if (rep == 0 || seconds < load_seconds) load_seconds = seconds;
    if (!loaded.ok() ||
        SerializeSnapshot(loaded.ValueOrDie()) != bytes) {
      round_trip_identical = false;
    }
  }
  std::printf("snapshot: %zu bytes, serialize %.4fs, load+validate %.4fs, "
              "round-trip byte-identical: %s\n",
              bytes.size(), serialize_seconds, load_seconds,
              round_trip_identical ? "yes" : "NO (bug!)");
  if (!round_trip_identical) ++failures;

  // ---- in-process lookups (the floor) -------------------------------------
  std::vector<std::string> surfaces;
  for (size_t s = 0; s < store->np.surface_count(); ++s) {
    surfaces.emplace_back(store->SurfaceText(CanonKind::kNp, s));
  }
  std::vector<double> lookup_ns;
  const size_t kLookups = 200000;
  lookup_ns.reserve(kLookups);
  size_t found = 0;
  for (size_t i = 0; i < kLookups; ++i) {
    const std::string& surface = surfaces[(i * 2654435761u) % surfaces.size()];
    const auto begin = std::chrono::steady_clock::now();
    const int64_t id = store->FindSurface(CanonKind::kNp, surface);
    if (id >= 0) {
      found += store->ClusterMembers(CanonKind::kNp,
                                     store->ClustersOf(CanonKind::kNp, id)[0])
                   .size();
    }
    const auto end = std::chrono::steady_clock::now();
    lookup_ns.push_back(
        std::chrono::duration<double, std::nano>(end - begin).count());
  }
  const double inproc_p50 = Percentile(lookup_ns, 50.0);
  const double inproc_p99 = Percentile(lookup_ns, 99.0);
  std::printf("in-process lookup (find + members): p50 %.0fns p99 %.0fns "
              "(%zu member refs touched)\n",
              inproc_p50, inproc_p99, found);

  // ---- HTTP: static store -------------------------------------------------
  // Event threads sized to the machine: extra epoll threads on a small
  // container only add context switches.
  const size_t hardware =
      std::max(1u, std::thread::hardware_concurrency());
  ServeOptions serve_options;
  serve_options.num_workers = std::min<size_t>(4, hardware);
  CanonServer server(serve_options);
  Status status = server.Start();
  if (!status.ok()) {
    std::printf("ERROR: %s\n", status.ToString().c_str());
    return 1;
  }
  server.Publish(store);
  std::vector<std::string> targets;
  for (size_t i = 0; i < 16 && i < surfaces.size(); ++i) {
    targets.push_back("/lookup?surface=" + UrlEncode(surfaces[i]));
    targets.push_back("/link?surface=" + UrlEncode(surfaces[i]));
  }
  targets.push_back("/stats");
  const size_t kClients = 4;
  const size_t kPerClient = 400;
  // Connection-per-request at 4 clients: the PR 4 baseline, kept
  // byte-compatible in the JSON for cross-PR comparison.
  HttpPhase static_phase =
      RunHttpPhase(server.port(), targets, kClients, kPerClient);
  PrintPhase("http static (connection-per-request, 4 clients)",
             static_phase);
  if (static_phase.errors > 0) ++failures;

  // ---- keep-alive sweep (1 / 4 / 16 / 64 persistent connections) ----------
  const size_t kKeepAlivePerClient =
      static_cast<size_t>(800.0 * env.scale) + 100;
  const std::vector<size_t> sweep_clients = {1, 4, 16, 64};
  std::vector<HttpPhase> sweep;
  HttpPhase keepalive_16;
  for (size_t clients : sweep_clients) {
    HttpPhase phase = RunKeepAlivePhase(server.port(), targets, clients,
                                        kKeepAlivePerClient);
    char label[64];
    std::snprintf(label, sizeof(label), "http keep-alive (%zu clients)",
                  clients);
    PrintPhase(label, phase);
    if (phase.errors > 0) ++failures;
    if (clients == 16) keepalive_16 = phase;
    sweep.push_back(phase);
  }

  // ---- close vs keep-alive at 16 clients (the CI gate) --------------------
  HttpPhase close_16 =
      RunHttpPhase(server.port(), targets, 16, kPerClient / 2);
  PrintPhase("http connection-per-request (16 clients)", close_16);
  if (close_16.errors > 0) ++failures;
  const double keepalive_speedup =
      close_16.qps > 0.0 ? keepalive_16.qps / close_16.qps : 0.0;
  std::printf("keep-alive vs connection-per-request at 16 clients: %.2fx "
              "(%.0f vs %.0f QPS)\n",
              keepalive_speedup, keepalive_16.qps, close_16.qps);
  if (keepalive_16.qps <= close_16.qps) {
    std::printf("FAIL: keep-alive QPS (%.0f) did not beat "
                "connection-per-request QPS (%.0f) at 16 clients\n",
                keepalive_16.qps, close_16.qps);
    ++failures;
  }

  // ---- metrics overhead at 16 clients (the ISSUE 9 gate) ------------------
  // Same store, same workers, only ServeOptions::metrics differs: the
  // metrics-off server skips the two clock reads and the histogram add
  // per request (counters run either way). Best-of-3, phases alternated
  // so ambient noise (CI neighbors, frequency scaling) hits both sides.
  ServeOptions nometrics_options;
  nometrics_options.num_workers = std::min<size_t>(4, hardware);
  nometrics_options.metrics = false;
  CanonServer nometrics_server(nometrics_options);
  status = nometrics_server.Start();
  if (!status.ok()) {
    std::printf("ERROR: %s\n", status.ToString().c_str());
    return 1;
  }
  nometrics_server.Publish(store);
  double metrics_off_qps = 0.0;
  double metrics_on_qps = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    HttpPhase off = RunKeepAlivePhase(nometrics_server.port(), targets, 16,
                                      kKeepAlivePerClient);
    HttpPhase on = RunKeepAlivePhase(server.port(), targets, 16,
                                     kKeepAlivePerClient);
    if (off.errors > 0 || on.errors > 0) ++failures;
    metrics_off_qps = std::max(metrics_off_qps, off.qps);
    metrics_on_qps = std::max(metrics_on_qps, on.qps);
  }
  nometrics_server.Stop();
  const double metrics_overhead_ratio =
      metrics_off_qps > 0.0 ? metrics_on_qps / metrics_off_qps : 0.0;
  std::printf("metrics overhead at 16 clients: %.3fx QPS with histograms "
              "live (%.0f vs %.0f QPS metrics-off, best of 3)\n",
              metrics_overhead_ratio, metrics_on_qps, metrics_off_qps);
  if (metrics_overhead_ratio < 0.95) {
    std::printf("FAIL: QPS with latency histograms (%.0f) fell below 0.95x "
                "the metrics-off baseline (%.0f)\n",
                metrics_on_qps, metrics_off_qps);
    ++failures;
  }

  // ---- cached vs rendered (prerender off) at 16 clients -------------------
  ServeOptions rendered_options;
  rendered_options.num_workers = std::min<size_t>(4, hardware);
  rendered_options.prerender = false;
  CanonServer rendered_server(rendered_options);
  status = rendered_server.Start();
  if (!status.ok()) {
    std::printf("ERROR: %s\n", status.ToString().c_str());
    return 1;
  }
  rendered_server.Publish(store);
  HttpPhase rendered_16 = RunKeepAlivePhase(rendered_server.port(), targets,
                                            16, kKeepAlivePerClient);
  // Sequential single client: with no concurrency to hide behind, the
  // per-request server CPU (parse -> binary-search -> writev vs full
  // JSON rendering) sits on the latency critical path.
  HttpPhase rendered_1 = RunKeepAlivePhase(rendered_server.port(), targets,
                                           1, kKeepAlivePerClient);
  rendered_server.Stop();
  PrintPhase("http keep-alive, prerender OFF (16 clients)", rendered_16);
  PrintPhase("http keep-alive, prerender OFF (1 client)", rendered_1);
  if (rendered_16.errors > 0) ++failures;
  if (rendered_1.errors > 0) ++failures;
  const double cache_speedup =
      rendered_16.qps > 0.0 ? keepalive_16.qps / rendered_16.qps : 0.0;
  const HttpPhase& cached_1 = sweep[0];  // the 1-client sweep entry
  const double cache_p50_gain =
      cached_1.p50_ms > 0.0 ? rendered_1.p50_ms / cached_1.p50_ms : 0.0;
  std::printf("pre-rendered cache vs allocating renderer: %.2fx QPS at 16 "
              "clients; sequential p50 %.3fms cached vs %.3fms rendered "
              "(%.2fx)\n",
              cache_speedup, cached_1.p50_ms, rendered_1.p50_ms,
              cache_p50_gain);

  // ---- HTTP: continuous republication (swap stall) ------------------------
  // A second store (half the triples) alternates with the full one every
  // few milliseconds while reader load runs: readers pin their bundle at
  // request start, so p99 under churn vs static measures the real swap
  // stall, and publish_max_ms bounds the writer side — which now
  // includes pre-rendering the response cache on every publish.
  std::vector<size_t> half(eval.begin(),
                           eval.begin() + static_cast<long>(eval.size() / 2));
  JoclResult half_result =
      JoclRuntime().Infer(ds, pack->signals(), half).MoveValueOrDie();
  JoclProblem half_problem = BuildProblem(ds, pack->signals(), half);
  auto half_store = std::make_shared<const CanonStore>(
      BuildCanonStore(half_problem, half_result, ds.ckb, /*generation=*/2));
  std::atomic<bool> publishing{true};
  std::vector<double> publish_ms;
  std::thread publisher([&] {
    bool full = false;
    while (publishing.load()) {
      Stopwatch publish_watch;
      server.Publish(full ? store : half_store);
      publish_ms.push_back(publish_watch.ElapsedMillis());
      full = !full;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  HttpPhase churn_phase =
      RunHttpPhase(server.port(), targets, kClients, kPerClient);
  HttpPhase keepalive_churn =
      RunKeepAlivePhase(server.port(), targets, 16, kKeepAlivePerClient);
  publishing.store(false);
  publisher.join();
  const double publish_p99 = Percentile(publish_ms, 99.0);
  const double publish_max =
      publish_ms.empty()
          ? 0.0
          : *std::max_element(publish_ms.begin(), publish_ms.end());
  PrintPhase("http under churn (connection-per-request, 4 clients)",
             churn_phase);
  PrintPhase("http under churn (keep-alive, 16 clients)", keepalive_churn);
  std::printf("churn publisher: %zu publishes (cache pre-render included), "
              "p99 %.4fms max %.4fms\n",
              publish_ms.size(), publish_p99, publish_max);
  if (churn_phase.errors > 0) ++failures;
  if (keepalive_churn.errors > 0) ++failures;
  const ServeCounters counters = server.counters();
  std::printf("event-loop counters: accepted %llu, reused %llu, timed_out "
              "%llu, cache_hits %llu, cache_misses %llu, writev_bytes %llu\n",
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.connections_reused),
              static_cast<unsigned long long>(counters.connections_timed_out),
              static_cast<unsigned long long>(counters.cache_hits),
              static_cast<unsigned long long>(counters.cache_misses),
              static_cast<unsigned long long>(counters.writev_bytes));
  server.Stop();

  // ---- JSON artifact ------------------------------------------------------
  const char* out_path = std::getenv("JOCL_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_serve.json";
  FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"scale\": %.3f,\n  \"seed\": %llu,\n", env.scale,
               static_cast<unsigned long long>(env.seed));
  std::fprintf(out, "  \"triples\": %zu,\n", eval.size());
  std::fprintf(out,
               "  \"store\": {\"np_surfaces\": %zu, \"np_clusters\": %zu, "
               "\"rp_surfaces\": %zu, \"rp_clusters\": %zu, "
               "\"build_seconds\": %.4f},\n",
               store->np.surface_count(), store->np.cluster_count(),
               store->rp.surface_count(), store->rp.cluster_count(),
               build_seconds);
  std::fprintf(out,
               "  \"snapshot\": {\"bytes\": %zu, \"serialize_seconds\": "
               "%.5f, \"load_seconds\": %.5f, \"round_trip_identical\": "
               "%s},\n",
               bytes.size(), serialize_seconds, load_seconds,
               round_trip_identical ? "true" : "false");
  std::fprintf(out,
               "  \"inprocess_lookup\": {\"samples\": %zu, \"p50_ns\": %.0f, "
               "\"p99_ns\": %.0f},\n",
               lookup_ns.size(), inproc_p50, inproc_p99);
  EmitPhase(out, "http_static", kClients, static_phase, true);
  std::fprintf(out, "  \"keepalive_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(out,
                 "    {\"clients\": %zu, \"requests\": %zu, \"errors\": %zu, "
                 "\"qps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                 sweep_clients[i], sweep[i].requests, sweep[i].errors,
                 sweep[i].qps, sweep[i].p50_ms, sweep[i].p99_ms,
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  EmitPhase(out, "close_16", 16, close_16, true);
  std::fprintf(out,
               "  \"keepalive_vs_close_16\": {\"close_qps\": %.1f, "
               "\"keepalive_qps\": %.1f, \"speedup\": %.3f},\n",
               close_16.qps, keepalive_16.qps, keepalive_speedup);
  std::fprintf(out,
               "  \"cached_vs_rendered_16\": {\"rendered_qps\": %.1f, "
               "\"cached_qps\": %.1f, \"speedup\": %.3f},\n",
               rendered_16.qps, keepalive_16.qps, cache_speedup);
  std::fprintf(out,
               "  \"cached_vs_rendered_1\": {\"rendered_p50_ms\": %.4f, "
               "\"cached_p50_ms\": %.4f, \"p50_speedup\": %.3f},\n",
               rendered_1.p50_ms, cached_1.p50_ms, cache_p50_gain);
  std::fprintf(out,
               "  \"http_under_churn\": {\"clients\": %zu, \"requests\": "
               "%zu, \"errors\": %zu, \"qps\": %.1f, \"p50_ms\": %.4f, "
               "\"p99_ms\": %.4f, \"publishes\": %zu, "
               "\"publish_p99_ms\": %.5f, \"publish_max_ms\": %.5f},\n",
               kClients, churn_phase.requests, churn_phase.errors,
               churn_phase.qps, churn_phase.p50_ms, churn_phase.p99_ms,
               publish_ms.size(), publish_p99, publish_max);
  EmitPhase(out, "keepalive_under_churn", 16, keepalive_churn, true);
  std::fprintf(out,
               "  \"metrics_overhead\": {\"metrics_on_qps\": %.1f, "
               "\"metrics_off_qps\": %.1f, \"metrics_overhead_ratio\": "
               "%.4f},\n",
               metrics_on_qps, metrics_off_qps, metrics_overhead_ratio);
  std::fprintf(out,
               "  \"counters\": {\"connections_accepted\": %llu, "
               "\"connections_reused\": %llu, \"connections_timed_out\": "
               "%llu, \"cache_hits\": %llu, \"cache_misses\": %llu, "
               "\"writev_bytes\": %llu}\n",
               static_cast<unsigned long long>(counters.connections_accepted),
               static_cast<unsigned long long>(counters.connections_reused),
               static_cast<unsigned long long>(counters.connections_timed_out),
               static_cast<unsigned long long>(counters.cache_hits),
               static_cast<unsigned long long>(counters.cache_misses),
               static_cast<unsigned long long>(counters.writev_bytes));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path);
  if (failures > 0) {
    std::printf("%d correctness check(s) FAILED\n", failures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { return jocl::bench::Run(); }
