// Extra diagnostic bench: the paper claims LBP "convergence was achieved
// within twenty iterations" (§3.4). This bench prints the message-residual
// curve of the inference pass on the full ReVerb45K-like joint graph.
#include <cmath>

#include "bench/bench_common.h"
#include "core/graph_builder.h"
#include "core/problem.h"
#include "graph/flat_lbp.h"

namespace jocl {
namespace bench {
namespace {

void Run() {
  BenchEnv env = BenchEnv::FromEnv();
  Banner("LBP convergence on the joint factor graph", env);
  Stopwatch watch;
  std::unique_ptr<DataPack> pack = DataPack::ReVerb(env);

  JoclProblem problem = BuildProblem(pack->dataset(), pack->signals(),
                                     pack->eval_triples());
  JoclGraph jgraph = BuildJoclGraph(problem, pack->signals(),
                                    pack->dataset().ckb);
  std::printf("graph: %zu variables, %zu factors\n",
              jgraph.graph.variable_count(), jgraph.graph.factor_count());

  std::vector<double> weights = Jocl::DefaultWeights();
  LbpOptions options;
  options.max_iterations = 30;
  options.tolerance = 1e-4;
  options.factor_schedule = jgraph.schedule;
  FlatLbpEngine engine(&jgraph.graph, &weights, options);
  LbpResult result = engine.Run();

  TablePrinter table({"Sweep", "Max residual", "Curve"});
  for (size_t i = 0; i < result.residual_history.size(); ++i) {
    double r = result.residual_history[i];
    size_t bar_len = 0;
    if (r > 0) {
      // log-scale bar: residual 1e-4 .. 1e+1 mapped onto 0..50 chars
      double norm = (std::log10(r) + 4.0) / 5.0;
      if (norm > 0) bar_len = static_cast<size_t>(norm * 50);
    }
    table.AddRow({std::to_string(i + 1), TablePrinter::Num(r, 6),
                  std::string(std::min<size_t>(bar_len, 60), '#')});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("converged: %s after %zu sweeps (paper: within 20)\n",
              result.converged ? "yes" : "no", result.iterations);
  std::printf("elapsed: %.1fs\n", watch.ElapsedSeconds());
}

}  // namespace
}  // namespace bench
}  // namespace jocl

int main() { jocl::bench::Run(); }
