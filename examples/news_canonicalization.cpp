// Canonicalizing a news-style OKB with no curated-KB annotations.
//
// NYTimes2018-style extractions have no training labels and many entities
// that are absent from the CKB. This example runs the canonicalization-only
// variant (JOCLcano, Table 4) and prints the largest NP groups it finds,
// plus the evaluation against the generator's gold clustering.
//
//   $ ./news_canonicalization [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "core/jocl.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"

using namespace jocl;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::printf("generating NYTimes2018-like data (scale %.2f)...\n", scale);
  Dataset dataset = GenerateNYTimes2018(scale, 11).MoveValueOrDie();
  std::printf("  %zu OIE triples from synthetic news extractions\n",
              dataset.okb.size());

  SignalBundle signals = BuildSignals(dataset).MoveValueOrDie();
  Jocl jocl(JoclOptions::CanonicalizationOnly());
  std::vector<size_t> all(dataset.okb.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  JoclResult result = jocl.Infer(dataset, signals, all).MoveValueOrDie();

  // Collect groups with at least 2 distinct surfaces.
  std::map<size_t, std::set<std::string>> groups;
  for (size_t t = 0; t < dataset.okb.size(); ++t) {
    groups[result.np_cluster[t * 2]].insert(dataset.okb.triple(t).subject);
    groups[result.np_cluster[t * 2 + 1]].insert(dataset.okb.triple(t).object);
  }
  std::vector<const std::set<std::string>*> multi;
  for (const auto& [label, surfaces] : groups) {
    if (surfaces.size() >= 2) multi.push_back(&surfaces);
  }
  std::sort(multi.begin(), multi.end(),
            [](const auto* a, const auto* b) { return a->size() > b->size(); });

  std::printf("\n%zu non-singleton NP groups; the largest:\n", multi.size());
  for (size_t k = 0; k < multi.size() && k < 6; ++k) {
    std::printf("  {");
    size_t shown = 0;
    for (const auto& surface : *multi[k]) {
      if (shown++ > 0) std::printf(", ");
      if (shown > 5) {
        std::printf("...");
        break;
      }
      std::printf("\"%s\"", surface.c_str());
    }
    std::printf("}\n");
  }

  ClusteringScore score =
      EvaluateClustering(result.np_cluster, dataset.GoldNpLabels());
  std::printf("\nagainst gold clustering: macro F1 %.3f, micro F1 %.3f, "
              "pairwise F1 %.3f, average F1 %.3f\n",
              score.macro.f1, score.micro.f1, score.pairwise.f1,
              score.average_f1);
  return 0;
}
