// Runs every canonicalization and linking method in the library over one
// generated data set and prints a compact comparison — a smoke-testable
// tour of the whole public API.
//
//   $ ./compare_baselines [scale]
#include <cstdio>
#include <cstdlib>

#include "baselines/entity_linking.h"
#include "baselines/np_canonicalization.h"
#include "baselines/relation_linking.h"
#include "baselines/rp_canonicalization.h"
#include "core/jocl.h"
#include "data/generator.h"
#include "eval/clustering_metrics.h"
#include "eval/linking_metrics.h"
#include "eval/table_printer.h"

using namespace jocl;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  Dataset ds = GenerateReVerb45K(scale, 99).MoveValueOrDie();
  SignalBundle sig = BuildSignals(ds).MoveValueOrDie();
  const std::vector<size_t>& eval = ds.test_triples;

  std::vector<size_t> gold_np;
  std::vector<size_t> gold_rp;
  std::vector<int64_t> gold_e;
  std::vector<int64_t> gold_r;
  for (size_t t : eval) {
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2]));
    gold_np.push_back(static_cast<size_t>(ds.gold_np_group[t * 2 + 1]));
    gold_rp.push_back(static_cast<size_t>(ds.gold_rp_group[t]));
    gold_e.push_back(ds.gold_subject_entity[t]);
    gold_e.push_back(ds.gold_object_entity[t]);
    gold_r.push_back(ds.gold_relation[t]);
  }

  Jocl jocl;
  JoclResult joint = jocl.Run(ds, sig, eval).MoveValueOrDie();

  TablePrinter np_table({"NP canonicalization", "Average F1"});
  auto add_np = [&](const char* name, const std::vector<size_t>& labels) {
    np_table.AddRow(
        {name, TablePrinter::Num(
                   EvaluateClustering(labels, gold_np).average_f1)});
  };
  add_np("Morph Norm", MorphNormCanonicalize(ds, eval));
  add_np("Wikidata Integrator", WikidataIntegratorCanonicalize(ds, eval));
  add_np("Text Similarity", TextSimilarityCanonicalize(ds, eval));
  add_np("IDF Token Overlap", IdfTokenOverlapCanonicalize(ds, sig, eval));
  add_np("Attribute Overlap", AttributeOverlapCanonicalize(ds, eval));
  add_np("CESI", CesiCanonicalize(ds, sig, eval));
  add_np("SIST", SistCanonicalize(ds, sig, eval));
  add_np("JOCL", joint.np_cluster);
  std::printf("%s\n", np_table.Render().c_str());

  TablePrinter rp_table({"RP canonicalization", "Average F1"});
  auto add_rp = [&](const char* name, const std::vector<size_t>& labels) {
    rp_table.AddRow(
        {name, TablePrinter::Num(
                   EvaluateClustering(labels, gold_rp).average_f1)});
  };
  add_rp("AMIE", AmieCanonicalize(ds, sig, eval));
  add_rp("PATTY", PattyCanonicalize(ds, eval));
  add_rp("SIST", SistRpCanonicalize(ds, sig, eval));
  add_rp("JOCL", joint.rp_cluster);
  std::printf("%s\n", rp_table.Render().c_str());

  TablePrinter el_table({"Entity linking", "Accuracy"});
  auto add_el = [&](const char* name, const std::vector<int64_t>& links) {
    el_table.AddRow({name, TablePrinter::Num(LinkingAccuracy(links, gold_e))});
  };
  add_el("Falcon", FalconLink(ds, sig, eval));
  add_el("EARL", EarlLink(ds, sig, eval));
  add_el("Spotlight", SpotlightLink(ds, sig, eval));
  add_el("TagMe", TagMeLink(ds, sig, eval));
  add_el("KBPearl", KbpearlLink(ds, sig, eval));
  add_el("JOCL", joint.np_link);
  std::printf("%s\n", el_table.Render().c_str());

  TablePrinter rl_table({"Relation linking", "Accuracy"});
  auto add_rl = [&](const char* name, const std::vector<int64_t>& links) {
    rl_table.AddRow({name, TablePrinter::Num(LinkingAccuracy(links, gold_r))});
  };
  add_rl("Falcon", FalconRelationLink(ds, sig, eval));
  add_rl("EARL", EarlRelationLink(ds, sig, eval));
  add_rl("KBPearl", KbpearlRelationLink(ds, sig, eval));
  add_rl("Rematch", RematchRelationLink(ds, sig, eval));
  add_rl("JOCL", joint.rp_link);
  std::printf("%s\n", rl_table.Render().c_str());
  return 0;
}
