// KB enrichment: the paper's motivating application (§1).
//
// Generates a ReVerb45K-like benchmark, runs JOCL jointly, and then uses
// the joint output to enrich the curated KB: every triple whose subject,
// relation and object all linked to CKB ids — but whose fact the CKB does
// not yet contain — becomes a proposed new fact. Prints acceptance
// statistics against the generator's gold facts.
//
//   $ ./kb_enrichment [scale]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/jocl.h"
#include "data/generator.h"

using namespace jocl;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::printf("generating ReVerb45K-like data (scale %.2f)...\n", scale);
  Dataset dataset = GenerateReVerb45K(scale, 7).MoveValueOrDie();
  std::printf("  %zu OIE triples, %zu CKB entities, %zu CKB facts\n",
              dataset.okb.size(), dataset.ckb.entity_count(),
              dataset.ckb.fact_count());

  SignalBundle signals = BuildSignals(dataset).MoveValueOrDie();
  Jocl jocl;
  JoclResult result =
      jocl.Run(dataset, signals, dataset.test_triples).MoveValueOrDie();

  // Propose facts: linked triples whose fact is absent from the CKB.
  struct Proposal {
    EntityId subject;
    RelationId relation;
    EntityId object;
  };
  std::set<std::tuple<int64_t, int64_t, int64_t>> seen;
  std::vector<Proposal> proposals;
  size_t correct = 0;
  for (size_t i = 0; i < result.triples.size(); ++i) {
    int64_t s = result.np_link[i * 2];
    int64_t r = result.rp_link[i];
    int64_t o = result.np_link[i * 2 + 1];
    if (s == kNilId || r == kNilId || o == kNilId) continue;
    if (dataset.ckb.HasFact(s, r, o)) continue;  // already known
    if (!seen.insert({s, r, o}).second) continue;
    proposals.push_back(Proposal{s, r, o});
    // A proposal is correct when it matches the triple's gold annotation.
    size_t t = result.triples[i];
    if (dataset.gold_subject_entity[t] == s &&
        dataset.gold_relation[t] == r &&
        dataset.gold_object_entity[t] == o) {
      ++correct;
    }
  }

  std::printf("\nproposed %zu novel facts; %zu (%.1f%%) exactly match the "
              "gold annotation of their source triple\n",
              proposals.size(), correct,
              proposals.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(correct) /
                        static_cast<double>(proposals.size()));

  std::printf("\nsample proposals:\n");
  for (size_t k = 0; k < proposals.size() && k < 8; ++k) {
    std::printf("  + <%s, %s, %s>\n",
                dataset.ckb.entity(proposals[k].subject).name.c_str(),
                dataset.ckb.relation(proposals[k].relation).name.c_str(),
                dataset.ckb.entity(proposals[k].object).name.c_str());
  }

  // Accept them into the CKB.
  size_t before = dataset.ckb.fact_count();
  for (const auto& p : proposals) {
    (void)dataset.ckb.AddFact(p.subject, p.relation, p.object);
  }
  std::printf("\nCKB grew from %zu to %zu facts\n", before,
              dataset.ckb.fact_count());
  return 0;
}
