// Quickstart: the paper's Figure 1(a) worked end to end.
//
// Builds the tiny CKB and the three OIE triples from the paper's running
// example, constructs the signal bundle, runs joint canonicalization and
// linking, and prints the groups and links JOCL produces.
//
//   $ ./quickstart
#include <cstdio>
#include <map>

#include "core/jocl.h"
#include "core/signals.h"
#include "data/dataset.h"

using namespace jocl;

int main() {
  // --- the curated KB from Figure 1(a) ------------------------------------
  Dataset example;
  CuratedKb& ckb = example.ckb;
  EntityId maryland = ckb.AddEntity("maryland");
  EntityId u21 = ckb.AddEntity("universitas 21");
  EntityId uva = ckb.AddEntity("university of virginia");
  EntityId umd = ckb.AddEntity("university of maryland");
  RelationId contained_by = ckb.AddRelation("location.contained_by");
  RelationId founded = ckb.AddRelation("organizations_founded");
  (void)ckb.AddRelationAlias(contained_by, "locate in");
  (void)ckb.AddRelationAlias(founded, "member of");
  (void)ckb.AddFact(umd, contained_by, maryland);
  (void)ckb.AddFact(uva, founded, u21);

  // Wikipedia-anchor statistics: "UMD" is an alias of the university, and
  // "U21" of Universitas 21.
  (void)ckb.AddAnchor("university of maryland", umd, 95);
  (void)ckb.AddAnchor("umd", umd, 40);
  (void)ckb.AddAnchor("maryland", maryland, 70);
  (void)ckb.AddAnchor("maryland", umd, 20);  // ambiguous reading
  (void)ckb.AddAnchor("universitas 21", u21, 30);
  (void)ckb.AddAnchor("u21", u21, 12);
  (void)ckb.AddAnchor("university of virginia", uva, 80);

  // --- the OKB: three OIE triples ------------------------------------------
  OpenKb& okb = example.okb;
  (void)okb.AddTriple("University of Maryland", "locate in", "Maryland");
  (void)okb.AddTriple("UMD", "be a member of", "Universitas 21");
  (void)okb.AddTriple("University of Virginia", "be an early member of",
                      "U21");

  // Gold labels are unknown in a real deployment; fill placeholders so the
  // Dataset is well-formed (the pipeline never reads them at inference).
  for (size_t t = 0; t < okb.size(); ++t) {
    example.gold_subject_entity.push_back(kNilId);
    example.gold_relation.push_back(kNilId);
    example.gold_object_entity.push_back(kNilId);
    example.gold_np_group.push_back(static_cast<int64_t>(t * 2));
    example.gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
    example.gold_rp_group.push_back(static_cast<int64_t>(t));
  }

  // PPDB knows that the acronym variants are paraphrases.
  example.ppdb.AddCluster({"university of maryland", "umd"});
  example.ppdb.AddCluster({"universitas 21", "u21"});
  example.ppdb.AddCluster({"be a member of", "be an early member of"});

  // --- signals + joint inference -------------------------------------------
  SignalBundle signals = BuildSignals(example).MoveValueOrDie();
  Jocl jocl;
  std::vector<size_t> all = {0, 1, 2};
  JoclResult result = jocl.Infer(example, signals, all).MoveValueOrDie();

  // --- print the joint output ----------------------------------------------
  std::printf("canonicalization groups (NP mentions):\n");
  std::map<size_t, std::vector<std::string>> groups;
  for (size_t t = 0; t < okb.size(); ++t) {
    groups[result.np_cluster[t * 2]].push_back(okb.triple(t).subject);
    groups[result.np_cluster[t * 2 + 1]].push_back(okb.triple(t).object);
  }
  for (const auto& [label, phrases] : groups) {
    std::printf("  group %zu:", label);
    for (const auto& phrase : phrases) std::printf(" [%s]", phrase.c_str());
    std::printf("\n");
  }

  std::printf("\nlinking results:\n");
  auto entity_name = [&](int64_t id) {
    return id == kNilId ? std::string("NIL") : ckb.entity(id).name;
  };
  auto relation_name = [&](int64_t id) {
    return id == kNilId ? std::string("NIL") : ckb.relation(id).name;
  };
  for (size_t t = 0; t < okb.size(); ++t) {
    const OieTriple& triple = okb.triple(t);
    std::printf("  <%s | %s | %s>\n", triple.subject.c_str(),
                triple.predicate.c_str(), triple.object.c_str());
    std::printf("     -> <%s | %s | %s>\n",
                entity_name(result.np_link[t * 2]).c_str(),
                relation_name(result.rp_link[t]).c_str(),
                entity_name(result.np_link[t * 2 + 1]).c_str());
  }
  std::printf("\nLBP converged after %zu sweeps (paper: within 20)\n",
              result.diagnostics.iterations);
  return 0;
}
