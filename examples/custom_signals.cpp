// Extending JOCL with a new signal — the paper's §3 flexibility claim
// ("JOCL is flexible to fit any new signals via adding suitable factor
// nodes") demonstrated on the raw factor-graph API.
//
// Scenario: we know (from some external resource) that two noun phrases
// have the same *type* (person / organization / place). Type agreement is
// weak positive evidence for co-reference, disagreement strong negative.
// We build a miniature canonicalization graph by hand, add the paper's
// IDF factor plus our new type-agreement factor, and watch the marginals
// move.
//
//   $ ./custom_signals
#include <cstdio>

#include "graph/factor_graph.h"
#include "graph/flat_lbp.h"
#include "text/similarity.h"

using namespace jocl;

namespace {

// Feature layout for this mini-model: weight 0 = IDF signal, weight 1 =
// the new type-agreement signal.
constexpr WeightId kIdfWeight = 0;
constexpr WeightId kTypeWeight = 1;

// The paper's two-state encoding: a signal with similarity `sim`
// contributes `sim` to the "same meaning" state and `1 - sim` to the
// "different" state.
FeatureTable PairFactor(WeightId weight, double sim) {
  FeatureTable table(2);
  table.Add(0, weight, 1.0 - sim);
  table.Add(1, weight, sim);
  return table;
}

}  // namespace

int main() {
  // Three NP pairs with hand-set evidence:
  //   pair 0: "warren buffett" / "buffett"      — high IDF, same type
  //   pair 1: "paris" / "paris hilton"          — high IDF, DIFFERENT type
  //   pair 2: "ibm" / "big blue"                — zero IDF, same type
  struct PairCase {
    const char* a;
    const char* b;
    double type_agreement;  // 1 same type, 0 different
  };
  PairCase cases[] = {
      {"warren buffett", "buffett", 1.0},
      {"paris", "paris hilton", 0.0},
      {"ibm", "big blue", 1.0},
  };

  IdfTable idf;
  for (const auto& c : cases) {
    idf.AddPhrase(c.a);
    idf.AddPhrase(c.b);
  }

  FactorGraph graph;
  graph.set_weight_count(2);
  std::vector<VariableId> x_vars;
  for (const auto& c : cases) {
    VariableId x = graph.AddVariable(2);
    x_vars.push_back(x);
    // The paper's F1 with its IDF feature...
    (void)graph.AddFactor({x}, PairFactor(kIdfWeight,
                                          idf.Similarity(c.a, c.b)));
    // ...plus OUR new signal as one more factor node on the same
    // variable. No engine changes needed — that is the whole point.
    (void)graph.AddFactor({x}, PairFactor(kTypeWeight, c.type_agreement));
  }

  auto report = [&](const char* title, const std::vector<double>& weights) {
    FlatLbpEngine engine(&graph, &weights, {});
    engine.Run();
    std::printf("%s\n", title);
    for (size_t p = 0; p < x_vars.size(); ++p) {
      std::printf("  P(same | \"%s\", \"%s\") = %.3f\n", cases[p].a,
                  cases[p].b, engine.Marginal(x_vars[p])[1]);
    }
    std::printf("\n");
  };

  // Without the type signal (its weight zeroed) IDF rules alone:
  report("IDF signal only:", {1.5, 0.0});
  // With the type signal active, "paris"/"paris hilton" is pushed apart
  // and "ibm"/"big blue" pulled together despite zero string overlap:
  report("IDF + type-agreement signal:", {1.5, 1.5});

  std::printf("Adding a signal = adding factor nodes; weights are learned\n"
              "with FactorGraphLearner exactly like the built-in ones.\n");
  return 0;
}
