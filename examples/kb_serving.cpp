// Serving a canonicalized KB: infer -> build a CanonStore -> save a
// versioned snapshot -> reload it -> query the store in process.
//
// Uses the paper's Figure 1(a) running example (same world as
// quickstart.cpp); the reloaded store answers "which cluster is this
// surface in, and which curated entity does it link to?" with pure
// binary search — no pipeline objects needed at query time. The same
// snapshot file can be served over HTTP with
// `jocl_serve --snapshot PATH` (see docs/serving.md).
//
//   $ ./example_kb_serving
#include <cstdio>
#include <string>

#include "core/jocl.h"
#include "core/problem.h"
#include "core/signals.h"
#include "data/dataset.h"
#include "serve/canon_store.h"
#include "serve/snapshot_io.h"

using namespace jocl;

int main() {
  // --- the Figure 1(a) world (see quickstart.cpp for the walkthrough) ------
  Dataset example;
  CuratedKb& ckb = example.ckb;
  EntityId maryland = ckb.AddEntity("maryland");
  EntityId u21 = ckb.AddEntity("universitas 21");
  EntityId uva = ckb.AddEntity("university of virginia");
  EntityId umd = ckb.AddEntity("university of maryland");
  RelationId contained_by = ckb.AddRelation("location.contained_by");
  RelationId founded = ckb.AddRelation("organizations_founded");
  (void)ckb.AddRelationAlias(contained_by, "locate in");
  (void)ckb.AddRelationAlias(founded, "member of");
  (void)ckb.AddFact(umd, contained_by, maryland);
  (void)ckb.AddFact(uva, founded, u21);
  (void)ckb.AddAnchor("university of maryland", umd, 95);
  (void)ckb.AddAnchor("umd", umd, 40);
  (void)ckb.AddAnchor("maryland", maryland, 70);
  (void)ckb.AddAnchor("maryland", umd, 20);
  (void)ckb.AddAnchor("universitas 21", u21, 30);
  (void)ckb.AddAnchor("u21", u21, 12);
  (void)ckb.AddAnchor("university of virginia", uva, 80);

  OpenKb& okb = example.okb;
  (void)okb.AddTriple("University of Maryland", "locate in", "Maryland");
  (void)okb.AddTriple("UMD", "be a member of", "Universitas 21");
  (void)okb.AddTriple("University of Virginia", "be an early member of",
                      "U21");
  for (size_t t = 0; t < okb.size(); ++t) {
    example.gold_subject_entity.push_back(kNilId);
    example.gold_relation.push_back(kNilId);
    example.gold_object_entity.push_back(kNilId);
    example.gold_np_group.push_back(static_cast<int64_t>(t * 2));
    example.gold_np_group.push_back(static_cast<int64_t>(t * 2 + 1));
    example.gold_rp_group.push_back(static_cast<int64_t>(t));
  }
  example.ppdb.AddCluster({"university of maryland", "umd"});
  example.ppdb.AddCluster({"universitas 21", "u21"});
  example.ppdb.AddCluster({"be a member of", "be an early member of"});

  // --- infer, index, snapshot ----------------------------------------------
  SignalBundle signals = BuildSignals(example).MoveValueOrDie();
  Jocl jocl;
  std::vector<size_t> all = {0, 1, 2};
  JoclResult result = jocl.Infer(example, signals, all).MoveValueOrDie();
  JoclProblem problem = BuildProblem(example, signals, all);
  CanonStore built =
      BuildCanonStore(problem, result, ckb, /*generation=*/1);

  const std::string path = "/tmp/jocl_kb_serving.snap";
  size_t bytes = 0;
  Status saved = SaveSnapshot(built, path, &bytes);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("saved snapshot: %s (%zu bytes)\n", path.c_str(), bytes);

  Result<CanonStore> reloaded = LoadSnapshot(path);
  if (!reloaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 reloaded.status().ToString().c_str());
    return 1;
  }
  const CanonStore& store = reloaded.ValueOrDie();
  std::printf("reloaded: %zu NP surfaces / %zu clusters, round trip %s\n\n",
              store.np.surface_count(), store.np.cluster_count(),
              SerializeSnapshot(store) == SerializeSnapshot(built)
                  ? "byte-identical"
                  : "BROKEN");

  // --- query the reloaded store --------------------------------------------
  auto show = [&](CanonKind kind, const char* surface) {
    const int64_t id = store.FindSurface(kind, surface);
    std::printf("%s \"%s\": ", kind == CanonKind::kNp ? "NP" : "RP",
                surface);
    if (id < 0) {
      std::printf("not in the store\n");
      return;
    }
    for (uint32_t cluster : store.ClustersOf(kind, id)) {
      std::printf("cluster %u {", cluster);
      bool first = true;
      for (uint32_t member : store.ClusterMembers(kind, cluster)) {
        std::printf("%s\"%.*s\"", first ? "" : ", ",
                    static_cast<int>(store.SurfaceText(kind, member).size()),
                    store.SurfaceText(kind, member).data());
        first = false;
      }
      std::string_view link = store.ClusterLinkName(kind, cluster);
      if (link.empty()) {
        std::printf("} -> NIL\n");
      } else {
        std::printf("} -> %.*s (id %lld)\n", static_cast<int>(link.size()),
                    link.data(),
                    static_cast<long long>(store.ClusterLink(kind, cluster)));
      }
    }
  };
  show(CanonKind::kNp, "UMD");
  show(CanonKind::kNp, "University of Maryland");
  show(CanonKind::kNp, "U21");
  show(CanonKind::kRp, "locate in");
  show(CanonKind::kNp, "stanford");  // miss: not part of this OKB

  std::printf("\nserve the same snapshot over HTTP:\n"
              "  ./build/jocl_serve --snapshot %s\n",
              path.c_str());
  std::remove(path.c_str());
  return 0;
}
